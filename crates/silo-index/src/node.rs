//! Node structures and low-level node operations for the Masstree-style
//! concurrent trie of B+-trees (paper §3, §4.6; Masstree §4).
//!
//! Every node starts with a [`NodeHeader`] containing a *version word*:
//!
//! ```text
//!  63                                    2   1    0
//! +----------------------------------------+----+----+
//! |          version counter               |LEAF|LOCK|
//! +----------------------------------------+----+----+
//! ```
//!
//! * `LOCK` — held by a writer while it modifies the node.
//! * `LEAF` — immutable node-kind flag (set for leaf nodes).
//! * counter — incremented on every *structural* change: key inserted or
//!   removed in a leaf, a suffix entry converted into a trie-layer pointer,
//!   node split, separator installed in an interior node.
//!
//! Readers never write to nodes: they read the version, read the node
//! contents, and re-check the version (the Masstree/OLFIT discipline). The
//! version counter is exactly what Silo's node-set validation records for
//! phantom protection.
//!
//! # Keyslices
//!
//! Keys are compared 8 bytes at a time as big-endian `u64` *keyslices* stored
//! **inline** in the nodes (Masstree §4.2): descent and leaf search never
//! chase a pointer for keys of at most 8 bytes (per trie layer). A leaf entry
//! is `(slice, klen, value, suffix)` where `klen` is:
//!
//! * `0..=8` — the key ends in this layer after `klen` bytes; `slice` holds
//!   the bytes zero-padded, `suffix` is unused.
//! * [`KLEN_SUFFIX`] — the key continues past the slice; the remaining bytes
//!   live out-of-line in a [`KeyBuf`].
//! * [`KLEN_LAYER`] — several keys continue past this slice; `value` points
//!   to the next trie layer (a whole B+-tree keyed on the next 8 bytes).
//!
//! Entries are ordered by `(slice, min(klen, 9))`: among keys sharing a
//! slice, shorter keys sort first, and the suffix/layer bucket (of which a
//! leaf holds at most one per slice) sorts last — which is exactly byte
//! order of the original keys. Because at most 10 distinct entries can share
//! one slice, a full leaf of [`LEAF_WIDTH`] entries always has a slice
//! boundary to split at, so entries with equal slices never straddle leaves
//! and interior nodes can route on the slice alone.
//!
//! # Permutation-ordered leaves
//!
//! Leaf entries live in fixed slots and are ordered by a packed 64-bit
//! *permutation* word (Masstree §4.6.2, 4 bits of count + 15 × 4-bit slot
//! indices): an insert writes a free slot and publishes a new permutation
//! with a single atomic store instead of shifting arrays while readers
//! retry. Freed slots go to the back of the free list so they are reused as
//! late as possible.

use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicU8, AtomicUsize, Ordering};

/// Maximum number of entries per leaf (limited by the 64-bit permutation
/// word: 4 bits of count plus 15 slot indices).
pub const LEAF_WIDTH: usize = 15;

/// Maximum number of separator keyslices per interior node
/// (`FANOUT + 1` children).
pub const FANOUT: usize = 15;

/// `klen` value marking an entry whose key continues past the slice with the
/// remainder stored out-of-line in a [`KeyBuf`].
pub const KLEN_SUFFIX: u8 = 9;

/// `klen` value marking an entry whose value is a pointer to the next trie
/// layer.
pub const KLEN_LAYER: u8 = 10;

/// Collapses a stored `klen` into its ordering class: inline lengths order
/// by length, and the suffix/layer bucket (there is at most one per slice)
/// orders after every inline entry of the same slice.
#[inline(always)]
pub fn klen_class(klen: u8) -> u8 {
    klen.min(KLEN_SUFFIX)
}

/// Lock bit of the node version word.
pub const NODE_LOCK_BIT: u64 = 1;
/// Leaf-flag bit of the node version word (immutable).
pub const NODE_LEAF_BIT: u64 = 1 << 1;
/// Increment applied to the version counter on each structural change.
pub const NODE_VERSION_INC: u64 = 1 << 2;

/// Prefetches the first cache lines of a node (or any object) into L1.
///
/// Descent knows the child it will visit one hop in advance; issuing the
/// prefetch before validating the parent overlaps the memory latency with
/// the version re-check (paper §3: Masstree "prefetches the next tree node
/// while descending").
#[inline(always)]
pub fn prefetch<T>(ptr: *const T) {
    #[cfg(target_arch = "x86_64")]
    {
        if ptr.is_null() {
            return;
        }
        // SAFETY: prefetch is a hint; it cannot fault even on dangling
        // addresses, and `ptr` refers to a live node here anyway.
        unsafe {
            use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            let p = ptr as *const i8;
            _mm_prefetch::<_MM_HINT_T0>(p);
            _mm_prefetch::<_MM_HINT_T0>(p.wrapping_add(64));
            _mm_prefetch::<_MM_HINT_T0>(p.wrapping_add(128));
            _mm_prefetch::<_MM_HINT_T0>(p.wrapping_add(192));
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = ptr;
    }
}

/// Extracts the keyslice and ordering class of the key *remainder* `rem`
/// (the key bytes from the current trie layer on): the first 8 bytes
/// big-endian (zero-padded), and `rem.len()` capped at [`KLEN_SUFFIX`].
///
/// Big-endian packing makes `u64` comparison agree with byte-string
/// comparison of the slices, which is the whole trick (§3).
#[inline(always)]
pub fn keyslice(rem: &[u8]) -> (u64, u8) {
    if rem.len() >= 8 {
        let slice = u64::from_be_bytes(rem[..8].try_into().expect("8 bytes"));
        let class = if rem.len() == 8 { 8 } else { KLEN_SUFFIX };
        (slice, class)
    } else {
        let mut buf = [0u8; 8];
        buf[..rem.len()].copy_from_slice(rem);
        (u64::from_be_bytes(buf), rem.len() as u8)
    }
}

/// An immutable, heap-allocated key-suffix buffer.
///
/// `KeyBuf`s are never mutated after construction, so concurrent readers may
/// dereference them freely; the only hazard is deallocation, which callers
/// must defer via epoch-based reclamation.
#[derive(Debug)]
pub struct KeyBuf {
    bytes: Box<[u8]>,
}

impl KeyBuf {
    /// Allocates a new buffer holding a copy of `bytes` and leaks it,
    /// returning the raw pointer that node slots store.
    pub fn allocate(bytes: &[u8]) -> *mut KeyBuf {
        Box::into_raw(Box::new(KeyBuf {
            bytes: bytes.to_vec().into_boxed_slice(),
        }))
    }

    /// The stored bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Frees a buffer previously produced by [`KeyBuf::allocate`].
    ///
    /// # Safety
    ///
    /// `ptr` must have been returned by [`KeyBuf::allocate`], must not have
    /// been freed already, and no thread may dereference it afterwards (i.e.
    /// the call must be deferred past a grace period if the buffer was ever
    /// published in a node).
    pub unsafe fn free(ptr: *mut KeyBuf) {
        debug_assert!(!ptr.is_null());
        // SAFETY: forwarded from the caller's contract.
        unsafe { drop(Box::from_raw(ptr)) };
    }
}

// ---------------------------------------------------------------------------
// Permutation word
// ---------------------------------------------------------------------------

/// A packed leaf permutation: bits `[0, 4)` hold the entry count `n`, bits
/// `[4 + 4i, 8 + 4i)` hold the slot index stored at position `i`. Positions
/// `0..n` list the active slots in sorted key order; positions `n..15` are
/// the free list (every slot index appears exactly once).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Permutation(u64);

impl Permutation {
    /// The empty permutation: no active entries, free list `0, 1, …, 14`.
    pub fn empty() -> Permutation {
        let mut word = 0u64;
        for i in 0..LEAF_WIDTH as u64 {
            word |= i << (4 + 4 * i);
        }
        Permutation(word)
    }

    /// Rebuilds a permutation from a raw word (as loaded from a leaf).
    #[inline(always)]
    pub fn from_raw(word: u64) -> Permutation {
        Permutation(word)
    }

    /// The raw word (as stored in a leaf).
    #[inline(always)]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Number of active entries.
    #[inline(always)]
    pub fn count(self) -> usize {
        (self.0 & 0xF) as usize
    }

    /// The slot index stored at position `pos` (active for `pos < count()`).
    #[inline(always)]
    pub fn slot(self, pos: usize) -> usize {
        ((self.0 >> (4 + 4 * pos)) & 0xF) as usize
    }

    fn to_slots(self) -> [u8; LEAF_WIDTH] {
        let mut slots = [0u8; LEAF_WIDTH];
        for (p, s) in slots.iter_mut().enumerate() {
            *s = self.slot(p) as u8;
        }
        slots
    }

    fn from_slots(slots: [u8; LEAF_WIDTH], count: usize) -> Permutation {
        let mut word = count as u64;
        for (p, s) in slots.iter().enumerate() {
            word |= (*s as u64) << (4 + 4 * p);
        }
        Permutation(word)
    }

    /// Returns the permutation with the first free slot inserted at `rank`,
    /// plus the chosen slot index. The caller writes the entry into the slot
    /// *before* publishing the returned permutation.
    pub fn insert_at(self, rank: usize) -> (Permutation, usize) {
        let n = self.count();
        debug_assert!(rank <= n && n < LEAF_WIDTH);
        let mut slots = self.to_slots();
        let free = slots[n];
        let mut p = n;
        while p > rank {
            slots[p] = slots[p - 1];
            p -= 1;
        }
        slots[rank] = free;
        (Permutation::from_slots(slots, n + 1), free as usize)
    }

    /// Returns the permutation with the entry at `rank` removed (its slot
    /// moved to the very back of the free list, so it is reused as late as
    /// possible), plus the freed slot index.
    pub fn remove_at(self, rank: usize) -> (Permutation, usize) {
        let n = self.count();
        debug_assert!(rank < n);
        let mut slots = self.to_slots();
        let freed = slots[rank];
        for p in rank..LEAF_WIDTH - 1 {
            slots[p] = slots[p + 1];
        }
        slots[LEAF_WIDTH - 1] = freed;
        (Permutation::from_slots(slots, n - 1), freed as usize)
    }

    /// Returns the permutation truncated to its first `count` entries (used
    /// by splits: the moved upper ranks become the new free region).
    pub fn truncated(self, count: usize) -> Permutation {
        debug_assert!(count <= self.count());
        Permutation((self.0 & !0xF) | count as u64)
    }
}

// ---------------------------------------------------------------------------
// Node header
// ---------------------------------------------------------------------------

/// Common header shared by leaf and interior nodes. `#[repr(C)]` with the
/// header first lets us cast a `*mut NodeHeader` to the concrete node type
/// once the LEAF bit has been inspected.
#[repr(C)]
#[derive(Debug)]
pub struct NodeHeader {
    version: AtomicU64,
}

impl NodeHeader {
    fn new(is_leaf: bool) -> Self {
        let v = if is_leaf { NODE_LEAF_BIT } else { 0 };
        NodeHeader {
            version: AtomicU64::new(v),
        }
    }

    /// Loads the raw version word (may include the lock bit).
    #[inline(always)]
    pub fn version_raw(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Spins until the lock bit is clear and returns the observed version
    /// word (lock bit clear).
    pub fn stable_version(&self) -> u64 {
        let mut spins = 0u32;
        loop {
            let v = self.version.load(Ordering::Acquire);
            if v & NODE_LOCK_BIT == 0 {
                return v;
            }
            spins = spins.wrapping_add(1);
            if spins % 128 == 0 {
                std::thread::yield_now();
            } else {
                core::hint::spin_loop();
            }
        }
    }

    /// Whether this node is a leaf.
    #[inline(always)]
    pub fn is_leaf(&self) -> bool {
        self.version.load(Ordering::Relaxed) & NODE_LEAF_BIT != 0
    }

    /// Acquires the node's write lock (spinning).
    pub fn lock(&self) {
        let mut spins = 0u32;
        loop {
            let v = self.version.load(Ordering::Relaxed);
            if v & NODE_LOCK_BIT == 0
                && self
                    .version
                    .compare_exchange_weak(
                        v,
                        v | NODE_LOCK_BIT,
                        Ordering::Acquire,
                        Ordering::Relaxed,
                    )
                    .is_ok()
            {
                return;
            }
            spins = spins.wrapping_add(1);
            if spins % 128 == 0 {
                std::thread::yield_now();
            } else {
                core::hint::spin_loop();
            }
        }
    }

    /// Attempts to atomically upgrade an optimistic read into the write lock:
    /// succeeds only if the version word still equals `expected_version`
    /// (which must not have the lock bit set). On success the caller holds
    /// the lock and knows the node has not changed since it was read.
    pub fn try_upgrade_lock(&self, expected_version: u64) -> bool {
        debug_assert_eq!(expected_version & NODE_LOCK_BIT, 0);
        self.version
            .compare_exchange(
                expected_version,
                expected_version | NODE_LOCK_BIT,
                Ordering::Acquire,
                Ordering::Relaxed,
            )
            .is_ok()
    }

    /// Releases the write lock without changing the version counter (the node
    /// was locked but not structurally modified).
    pub fn unlock(&self) {
        let v = self.version.load(Ordering::Relaxed);
        debug_assert!(v & NODE_LOCK_BIT != 0);
        self.version.store(v & !NODE_LOCK_BIT, Ordering::Release);
    }

    /// Releases the write lock and increments the version counter (the node
    /// was structurally modified). Returns the new (unlocked) version word.
    pub fn unlock_with_increment(&self) -> u64 {
        let v = self.version.load(Ordering::Relaxed);
        debug_assert!(v & NODE_LOCK_BIT != 0);
        let new = (v & !NODE_LOCK_BIT) + NODE_VERSION_INC;
        self.version.store(new, Ordering::Release);
        new
    }
}

// ---------------------------------------------------------------------------
// Interior nodes
// ---------------------------------------------------------------------------

/// An interior (routing) node: `nkeys` separator keyslices — stored inline
/// as `u64`s, so routing is pure register compares — and `nkeys + 1`
/// children. `children[i]` covers slices `< keys[i]`; `children[nkeys]`
/// covers slices `≥ keys[nkeys - 1]`.
///
/// Interior inserts still shift arrays (splits are orders of magnitude rarer
/// than leaf inserts), but with inline slices a torn optimistic read can at
/// worst route to a sibling — which the version re-check catches — rather
/// than dereference a half-written pointer.
#[repr(C)]
pub struct InnerNode {
    /// Version word (see [`NodeHeader`]).
    pub header: NodeHeader,
    nkeys: AtomicUsize,
    keys: [AtomicU64; FANOUT],
    children: [AtomicPtr<NodeHeader>; FANOUT + 1],
}

impl InnerNode {
    /// Allocates a new empty interior node and leaks it.
    pub fn allocate() -> *mut InnerNode {
        Box::into_raw(Box::new(InnerNode {
            header: NodeHeader::new(false),
            nkeys: AtomicUsize::new(0),
            keys: [const { AtomicU64::new(0) }; FANOUT],
            children: [const { AtomicPtr::new(std::ptr::null_mut()) }; FANOUT + 1],
        }))
    }

    /// Number of separator slices currently in the node.
    #[inline(always)]
    pub fn nkeys(&self) -> usize {
        self.nkeys.load(Ordering::Acquire)
    }

    /// The child pointer stored at `idx`.
    #[inline(always)]
    pub fn child(&self, idx: usize) -> *mut NodeHeader {
        self.children[idx].load(Ordering::Acquire)
    }

    /// Finds the index of the child that covers `slice`.
    ///
    /// Works both under the node lock and optimistically (in the latter case
    /// the result is only meaningful if the version validates afterwards).
    #[inline(always)]
    pub fn route(&self, slice: u64) -> usize {
        let n = self.nkeys().min(FANOUT);
        let mut idx = 0;
        while idx < n && slice >= self.keys[idx].load(Ordering::Acquire) {
            idx += 1;
        }
        idx
    }

    /// Inserts separator `slice` with right child `right` at position `idx`,
    /// shifting subsequent entries. Caller must hold the node lock and
    /// guarantee the node is not full.
    pub fn insert_separator(&self, idx: usize, slice: u64, right: *mut NodeHeader) {
        let n = self.nkeys();
        debug_assert!(n < FANOUT);
        debug_assert!(idx <= n);
        // Shift from the top down so concurrent optimistic readers always
        // see initialized slots.
        let mut i = n;
        while i > idx {
            let k = self.keys[i - 1].load(Ordering::Relaxed);
            self.keys[i].store(k, Ordering::Release);
            let c = self.children[i].load(Ordering::Relaxed);
            self.children[i + 1].store(c, Ordering::Release);
            i -= 1;
        }
        self.keys[idx].store(slice, Ordering::Release);
        self.children[idx + 1].store(right, Ordering::Release);
        self.nkeys.store(n + 1, Ordering::Release);
    }

    /// Initializes a fresh root with a single separator and two children.
    /// Caller owns the node exclusively.
    pub fn init_root(&self, slice: u64, left: *mut NodeHeader, right: *mut NodeHeader) {
        self.keys[0].store(slice, Ordering::Release);
        self.children[0].store(left, Ordering::Release);
        self.children[1].store(right, Ordering::Release);
        self.nkeys.store(1, Ordering::Release);
    }

    /// Whether inserting one more separator would overflow the node.
    pub fn is_full(&self) -> bool {
        self.nkeys() >= FANOUT
    }

    /// Splits this (full, locked) node: the upper half of the separators and
    /// children move to a freshly allocated right sibling, and the middle
    /// separator is *promoted* (returned) for insertion into the parent.
    ///
    /// Returns `(promoted_slice, right_sibling)`. The caller must hold this
    /// node's lock; the right sibling is returned locked so the caller can
    /// publish it before any other writer touches it.
    pub fn split(&self) -> (u64, *mut InnerNode) {
        let n = self.nkeys();
        debug_assert_eq!(n, FANOUT);
        let mid = n / 2;
        let right = InnerNode::allocate();
        // SAFETY: freshly allocated, exclusively owned until published.
        let right_ref = unsafe { &*right };
        right_ref.header.lock();
        let promoted = self.keys[mid].load(Ordering::Relaxed);
        let mut j = 0;
        for i in (mid + 1)..n {
            let k = self.keys[i].load(Ordering::Relaxed);
            right_ref.keys[j].store(k, Ordering::Release);
            let c = self.children[i].load(Ordering::Relaxed);
            right_ref.children[j].store(c, Ordering::Release);
            j += 1;
        }
        let last_child = self.children[n].load(Ordering::Relaxed);
        right_ref.children[j].store(last_child, Ordering::Release);
        right_ref.nkeys.store(j, Ordering::Release);
        self.nkeys.store(mid, Ordering::Release);
        (promoted, right)
    }
}

// ---------------------------------------------------------------------------
// Leaf nodes
// ---------------------------------------------------------------------------

/// Outcome of searching a leaf for a `(slice, class)` key position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeafSearch {
    /// An entry with the same `(slice, class)` exists: its rank in the
    /// permutation order and its storage slot.
    Found {
        /// Position in the sorted permutation order.
        rank: usize,
        /// Storage slot holding the entry.
        slot: usize,
    },
    /// No such entry; it would belong at the given rank.
    NotFound {
        /// Insertion position in the sorted permutation order.
        rank: usize,
    },
}

/// A leaf node: up to [`LEAF_WIDTH`] entries in fixed slots, ordered by the
/// permutation word, plus a B-link pointer to the right sibling leaf. Field
/// order keeps the search-relevant arrays (`slices`, `klens`) in the first
/// cache lines.
#[repr(C)]
pub struct LeafNode {
    /// Version word (see [`NodeHeader`]).
    pub header: NodeHeader,
    permutation: AtomicU64,
    slices: [AtomicU64; LEAF_WIDTH],
    klens: [AtomicU8; LEAF_WIDTH],
    next: AtomicPtr<LeafNode>,
    values: [AtomicU64; LEAF_WIDTH],
    suffixes: [AtomicPtr<KeyBuf>; LEAF_WIDTH],
}

impl LeafNode {
    /// Allocates a new empty leaf and leaks it.
    pub fn allocate() -> *mut LeafNode {
        Box::into_raw(Box::new(LeafNode {
            header: NodeHeader::new(true),
            permutation: AtomicU64::new(Permutation::empty().raw()),
            slices: [const { AtomicU64::new(0) }; LEAF_WIDTH],
            klens: [const { AtomicU8::new(0) }; LEAF_WIDTH],
            next: AtomicPtr::new(std::ptr::null_mut()),
            values: [const { AtomicU64::new(0) }; LEAF_WIDTH],
            suffixes: [const { AtomicPtr::new(std::ptr::null_mut()) }; LEAF_WIDTH],
        }))
    }

    /// The current permutation word.
    #[inline(always)]
    pub fn permutation(&self) -> Permutation {
        Permutation::from_raw(self.permutation.load(Ordering::Acquire))
    }

    /// Publishes a new permutation. Caller must hold the leaf lock.
    #[inline(always)]
    pub fn set_permutation(&self, perm: Permutation) {
        self.permutation.store(perm.raw(), Ordering::Release);
    }

    /// The keyslice stored in `slot`.
    #[inline(always)]
    pub fn slice(&self, slot: usize) -> u64 {
        self.slices[slot].load(Ordering::Acquire)
    }

    /// The `klen` stored in `slot` (`0..=8`, [`KLEN_SUFFIX`] or
    /// [`KLEN_LAYER`]).
    #[inline(always)]
    pub fn klen(&self, slot: usize) -> u8 {
        self.klens[slot].load(Ordering::Acquire)
    }

    /// The value stored in `slot` (a record pointer, or a trie-layer pointer
    /// when `klen == KLEN_LAYER`).
    #[inline(always)]
    pub fn value(&self, slot: usize) -> u64 {
        self.values[slot].load(Ordering::Acquire)
    }

    /// The suffix buffer stored in `slot` (meaningful for
    /// `klen == KLEN_SUFFIX`).
    #[inline(always)]
    pub fn suffix(&self, slot: usize) -> *mut KeyBuf {
        self.suffixes[slot].load(Ordering::Acquire)
    }

    /// Atomically overwrites the value in `slot`. Caller must hold the leaf
    /// lock so the slot cannot be recycled underneath it.
    pub fn set_value(&self, slot: usize, value: u64) {
        self.values[slot].store(value, Ordering::Release);
    }

    /// The right sibling leaf (B-link pointer).
    #[inline(always)]
    pub fn next(&self) -> *mut LeafNode {
        self.next.load(Ordering::Acquire)
    }

    /// Searches the leaf (under the permutation snapshot `perm`) for an
    /// entry with the given slice and ordering class.
    ///
    /// Under the leaf lock the result is exact; optimistic readers must
    /// validate the leaf version afterwards. For `class <= 8` a `Found`
    /// result identifies the key completely (equal slice + equal length ⇒
    /// equal bytes); for `class == 9` it identifies the slice's suffix/layer
    /// bucket, which the caller disambiguates via [`LeafNode::klen`].
    #[inline]
    pub fn search(&self, perm: Permutation, slice: u64, class: u8) -> LeafSearch {
        let n = perm.count();
        for rank in 0..n {
            let slot = perm.slot(rank);
            let es = self.slices[slot].load(Ordering::Acquire);
            if es < slice {
                continue;
            }
            if es > slice {
                return LeafSearch::NotFound { rank };
            }
            let ec = klen_class(self.klens[slot].load(Ordering::Acquire));
            if ec < class {
                continue;
            }
            if ec > class {
                return LeafSearch::NotFound { rank };
            }
            return LeafSearch::Found { rank, slot };
        }
        LeafSearch::NotFound { rank: n }
    }

    /// Writes a full entry into `slot` and publishes the permutation placing
    /// it at `rank`. Caller must hold the leaf lock and pass the current
    /// permutation; the leaf must not be full. Returns the new permutation.
    pub fn insert_entry(
        &self,
        perm: Permutation,
        rank: usize,
        slice: u64,
        klen: u8,
        suffix: *mut KeyBuf,
        value: u64,
    ) -> Permutation {
        let (new_perm, slot) = perm.insert_at(rank);
        self.slices[slot].store(slice, Ordering::Release);
        self.klens[slot].store(klen, Ordering::Release);
        self.suffixes[slot].store(suffix, Ordering::Release);
        self.values[slot].store(value, Ordering::Release);
        // The permutation store publishes the slot: readers that see the new
        // word also see the entry fields (release/acquire on the word).
        self.set_permutation(new_perm);
        new_perm
    }

    /// Removes the entry at `rank`, publishing the shrunken permutation.
    /// Returns `(klen, suffix, value)` of the removed entry; ownership of a
    /// non-null suffix passes to the caller, which must defer its
    /// destruction past a grace period. Caller must hold the leaf lock. The
    /// slot's contents are intentionally left in place: readers holding the
    /// old permutation can still load them consistently.
    pub fn remove_entry(&self, perm: Permutation, rank: usize) -> (u8, *mut KeyBuf, u64) {
        let (new_perm, slot) = perm.remove_at(rank);
        let klen = self.klens[slot].load(Ordering::Relaxed);
        let suffix = self.suffixes[slot].load(Ordering::Relaxed);
        let value = self.values[slot].load(Ordering::Relaxed);
        self.set_permutation(new_perm);
        (klen, suffix, value)
    }

    /// Converts the suffix entry in `slot` into a trie-layer pointer: the
    /// value becomes `layer` and the `klen` becomes [`KLEN_LAYER`]. Returns
    /// the displaced suffix buffer, whose destruction the caller must defer
    /// (concurrent readers holding the old `(klen, suffix)` pair may still
    /// dereference it). Caller must hold the leaf lock.
    ///
    /// Store order matters for lock-free readers: the value is written
    /// before the `klen`, so a reader that observes `KLEN_LAYER` is
    /// guaranteed to load the layer pointer (release on `klen`, acquire on
    /// the reader's `klen` load). A reader that instead observes the *old*
    /// `klen` with the *new* value returns a garbage `u64` — which the leaf
    /// version re-check (the conversion increments it) discards before the
    /// caller can dereference anything.
    pub fn convert_to_layer(&self, slot: usize, layer: u64) -> *mut KeyBuf {
        debug_assert_eq!(self.klens[slot].load(Ordering::Relaxed), KLEN_SUFFIX);
        let suffix = self.suffixes[slot].load(Ordering::Relaxed);
        self.values[slot].store(layer, Ordering::Release);
        self.klens[slot].store(KLEN_LAYER, Ordering::Release);
        suffix
    }

    /// Whether inserting one more entry would overflow the leaf.
    pub fn is_full(&self) -> bool {
        self.permutation().count() >= LEAF_WIDTH
    }

    /// Splits this (full, locked) leaf at a slice boundary: the upper ranks
    /// move to a freshly allocated right sibling which is linked into the
    /// B-link chain. Entries sharing a slice never straddle the boundary —
    /// always possible because at most 10 entries can share a slice — so the
    /// parent can route on the separator slice alone.
    ///
    /// Returns `(separator_slice, right_sibling)`; the separator equals the
    /// right sibling's first slice. The right sibling is returned locked.
    pub fn split(&self) -> (u64, *mut LeafNode) {
        let perm = self.permutation();
        let n = perm.count();
        debug_assert_eq!(n, LEAF_WIDTH);
        // Pick the slice boundary closest to the middle.
        let mut boundary = 0usize;
        let mut best = usize::MAX;
        for j in 1..n {
            let prev = self.slices[perm.slot(j - 1)].load(Ordering::Relaxed);
            let cur = self.slices[perm.slot(j)].load(Ordering::Relaxed);
            if prev != cur {
                let dist = j.abs_diff(n / 2);
                if dist < best {
                    best = dist;
                    boundary = j;
                }
            }
        }
        assert!(boundary > 0, "a full leaf always has a slice boundary");
        let right = LeafNode::allocate();
        // SAFETY: freshly allocated, exclusively owned until published.
        let right_ref = unsafe { &*right };
        right_ref.header.lock();
        let mut j = 0;
        for rank in boundary..n {
            let slot = perm.slot(rank);
            right_ref.slices[j].store(self.slices[slot].load(Ordering::Relaxed), Ordering::Release);
            right_ref.klens[j].store(self.klens[slot].load(Ordering::Relaxed), Ordering::Release);
            // Ownership of suffix buffers moves to the right sibling; the
            // left slot keeps a stale copy, but it sits in the free region
            // after the truncation below, so only the right sibling ever
            // frees it.
            right_ref
                .suffixes[j]
                .store(self.suffixes[slot].load(Ordering::Relaxed), Ordering::Release);
            right_ref.values[j].store(self.values[slot].load(Ordering::Relaxed), Ordering::Release);
            j += 1;
        }
        // Identity permutation over the copied entries.
        let mut right_perm = Permutation::empty();
        right_perm = Permutation::from_raw((right_perm.raw() & !0xF) | j as u64);
        right_ref.set_permutation(right_perm);
        right_ref
            .next
            .store(self.next.load(Ordering::Relaxed), Ordering::Release);
        self.next.store(right, Ordering::Release);
        let sep = right_ref.slices[0].load(Ordering::Relaxed);
        // Truncating the permutation atomically retires the moved ranks:
        // their slots become the new free region.
        self.set_permutation(perm.truncated(boundary));
        (sep, right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_lock_and_version_increment() {
        let h = NodeHeader::new(true);
        let v0 = h.stable_version();
        assert!(v0 & NODE_LEAF_BIT != 0);
        h.lock();
        assert!(h.version_raw() & NODE_LOCK_BIT != 0);
        let v1 = h.unlock_with_increment();
        assert_eq!(v1, v0 + NODE_VERSION_INC);
        h.lock();
        h.unlock();
        assert_eq!(h.stable_version(), v1);
    }

    #[test]
    fn keyslice_orders_like_bytes() {
        let keys: Vec<&[u8]> = vec![
            b"",
            b"\x00",
            b"\x00\x00",
            b"a",
            b"a\x00",
            b"ab",
            b"abcdefgh",
            b"abcdefghi",
            b"b",
            b"\xff",
        ];
        for w in keys.windows(2) {
            let (s0, c0) = keyslice(w[0]);
            let (s1, c1) = keyslice(w[1]);
            assert!(
                (s0, c0) <= (s1, c1),
                "slice order must follow byte order: {:?} vs {:?}",
                w[0],
                w[1]
            );
        }
        assert_eq!(keyslice(b"abcdefgh").1, 8);
        assert_eq!(keyslice(b"abcdefghi").1, KLEN_SUFFIX);
        assert_eq!(keyslice(b"").1, 0);
    }

    #[test]
    fn permutation_insert_remove_roundtrip() {
        let mut perm = Permutation::empty();
        assert_eq!(perm.count(), 0);
        // Insert slots at alternating ranks.
        let (p1, s1) = perm.insert_at(0);
        perm = p1;
        let (p2, s2) = perm.insert_at(0);
        perm = p2;
        let (p3, s3) = perm.insert_at(2);
        perm = p3;
        assert_eq!(perm.count(), 3);
        assert_ne!(s1, s2);
        assert_ne!(s2, s3);
        assert_eq!(perm.slot(0), s2);
        assert_eq!(perm.slot(1), s1);
        assert_eq!(perm.slot(2), s3);
        // Every slot index appears exactly once across the word.
        let mut seen = [false; LEAF_WIDTH];
        for p in 0..LEAF_WIDTH {
            let s = perm.slot(p);
            assert!(!seen[s]);
            seen[s] = true;
        }
        // Remove the middle entry; its slot goes to the very back.
        let (p4, freed) = perm.remove_at(1);
        assert_eq!(freed, s1);
        assert_eq!(p4.count(), 2);
        assert_eq!(p4.slot(0), s2);
        assert_eq!(p4.slot(1), s3);
        assert_eq!(p4.slot(LEAF_WIDTH - 1), s1);
    }

    #[test]
    fn permutation_freed_slots_reused_last() {
        let mut perm = Permutation::empty();
        for _ in 0..3 {
            perm = perm.insert_at(0).0;
        }
        let (after_remove, freed) = perm.remove_at(0);
        // The next two inserts must pick other free slots before the freed
        // one comes back around.
        let (p1, s1) = after_remove.insert_at(0);
        assert_ne!(s1, freed);
        let (_, s2) = p1.insert_at(0);
        assert_ne!(s2, freed);
    }

    #[test]
    fn leaf_insert_search_remove() {
        let leaf_ptr = LeafNode::allocate();
        // SAFETY: single-threaded exclusive access in this test.
        let leaf = unsafe { &*leaf_ptr };
        for (i, k) in [b"bb".as_ref(), b"dd", b"ff"].iter().enumerate() {
            let (slice, class) = keyslice(k);
            let perm = leaf.permutation();
            let rank = match leaf.search(perm, slice, class) {
                LeafSearch::NotFound { rank } => rank,
                LeafSearch::Found { .. } => panic!("unexpected"),
            };
            leaf.insert_entry(perm, rank, slice, class, std::ptr::null_mut(), i as u64 + 10);
        }
        assert_eq!(leaf.permutation().count(), 3);
        let (slice, class) = keyslice(b"dd");
        match leaf.search(leaf.permutation(), slice, class) {
            LeafSearch::Found { rank, slot } => {
                assert_eq!(rank, 1);
                assert_eq!(leaf.value(slot), 11);
            }
            LeafSearch::NotFound { .. } => panic!("dd must be present"),
        }
        let (slice, class) = keyslice(b"cc");
        assert_eq!(
            leaf.search(leaf.permutation(), slice, class),
            LeafSearch::NotFound { rank: 1 }
        );
        let (_, suffix, value) = leaf.remove_entry(leaf.permutation(), 1);
        assert!(suffix.is_null());
        assert_eq!(value, 11);
        let (slice, class) = keyslice(b"dd");
        assert_eq!(
            leaf.search(leaf.permutation(), slice, class),
            LeafSearch::NotFound { rank: 1 }
        );
        assert_eq!(leaf.permutation().count(), 2);
        // SAFETY: exclusive access; no suffixes were allocated.
        unsafe { drop(Box::from_raw(leaf_ptr)) };
    }

    #[test]
    fn leaf_orders_same_slice_by_length_then_bucket() {
        let leaf_ptr = LeafNode::allocate();
        // SAFETY: single-threaded exclusive access in this test.
        let leaf = unsafe { &*leaf_ptr };
        // "a", "a\0\0" (3 bytes), and a long key sharing the slice.
        let keys: [&[u8]; 3] = [b"a\x00\x00", b"a", b"a\x00\x00\x00\x00\x00\x00\x00xyz"];
        for (i, k) in keys.iter().enumerate() {
            let (slice, class) = keyslice(k);
            let suffix = if class == KLEN_SUFFIX {
                KeyBuf::allocate(&k[8..])
            } else {
                std::ptr::null_mut()
            };
            let perm = leaf.permutation();
            let rank = match leaf.search(perm, slice, class) {
                LeafSearch::NotFound { rank } => rank,
                LeafSearch::Found { .. } => panic!("distinct keys"),
            };
            leaf.insert_entry(perm, rank, slice, class, suffix, i as u64);
        }
        let perm = leaf.permutation();
        assert_eq!(perm.count(), 3);
        // Sorted order: "a" (len 1), "a\0\0" (len 3), long key (bucket).
        assert_eq!(leaf.value(perm.slot(0)), 1);
        assert_eq!(leaf.value(perm.slot(1)), 0);
        assert_eq!(leaf.value(perm.slot(2)), 2);
        assert_eq!(leaf.klen(perm.slot(2)), KLEN_SUFFIX);
        // SAFETY: exclusive access; free the one suffix then the leaf.
        unsafe {
            KeyBuf::free(leaf.suffix(perm.slot(2)));
            drop(Box::from_raw(leaf_ptr));
        }
    }

    #[test]
    fn leaf_split_moves_upper_half_and_links_sibling() {
        let leaf_ptr = LeafNode::allocate();
        // SAFETY: single-threaded exclusive access in this test.
        let leaf = unsafe { &*leaf_ptr };
        for i in 0..LEAF_WIDTH {
            let key = format!("key{:03}", i);
            let (slice, class) = keyslice(key.as_bytes());
            let perm = leaf.permutation();
            leaf.insert_entry(perm, i, slice, class, std::ptr::null_mut(), i as u64);
        }
        assert!(leaf.is_full());
        leaf.header.lock();
        let (sep, right_ptr) = leaf.split();
        // SAFETY: right sibling freshly created by split.
        let right = unsafe { &*right_ptr };
        let left_n = leaf.permutation().count();
        let right_n = right.permutation().count();
        assert_eq!(left_n + right_n, LEAF_WIDTH);
        assert!(left_n > 0 && right_n > 0);
        let expected = keyslice(format!("key{:03}", left_n).as_bytes()).0;
        assert_eq!(sep, expected);
        assert_eq!(leaf.next(), right_ptr);
        // Every left entry's slice < sep <= every right entry's slice.
        for r in 0..left_n {
            assert!(leaf.slice(leaf.permutation().slot(r)) < sep);
        }
        for r in 0..right_n {
            assert!(right.slice(right.permutation().slot(r)) >= sep);
        }
        leaf.header.unlock_with_increment();
        right.header.unlock_with_increment();
        // SAFETY: exclusive access; no suffixes in play.
        unsafe {
            drop(Box::from_raw(leaf_ptr));
            drop(Box::from_raw(right_ptr));
        }
    }

    #[test]
    fn leaf_split_keeps_equal_slices_together() {
        let leaf_ptr = LeafNode::allocate();
        // SAFETY: single-threaded exclusive access in this test.
        let leaf = unsafe { &*leaf_ptr };
        // 10 entries share the all-zero slice (prefixes of zeros pad to the
        // same slice: lengths 0..=8, plus the suffix bucket — the worst
        // case), the rest use larger slices: the boundary must fall between.
        let shared = &[0u8; 8];
        let mut i = 0u64;
        for len in 0..=8usize {
            let key = &shared[..len];
            let (slice, class) = keyslice(key);
            let perm = leaf.permutation();
            let rank = match leaf.search(perm, slice, class) {
                LeafSearch::NotFound { rank } => rank,
                LeafSearch::Found { .. } => panic!("distinct lengths"),
            };
            leaf.insert_entry(perm, rank, slice, class, std::ptr::null_mut(), i);
            i += 1;
        }
        // One suffix-bucket entry for the shared slice.
        {
            let key = b"\x00\x00\x00\x00\x00\x00\x00\x00ZZ";
            let (slice, class) = keyslice(key);
            let perm = leaf.permutation();
            let rank = match leaf.search(perm, slice, class) {
                LeafSearch::NotFound { rank } => rank,
                LeafSearch::Found { .. } => panic!("bucket empty"),
            };
            leaf.insert_entry(perm, rank, slice, class, KeyBuf::allocate(&key[8..]), i);
            i += 1;
        }
        for extra in 0..(LEAF_WIDTH - 10) {
            let key = format!("zz{extra:03}");
            let (slice, class) = keyslice(key.as_bytes());
            let perm = leaf.permutation();
            let rank = match leaf.search(perm, slice, class) {
                LeafSearch::NotFound { rank } => rank,
                LeafSearch::Found { .. } => panic!("distinct"),
            };
            leaf.insert_entry(perm, rank, slice, class, std::ptr::null_mut(), i);
            i += 1;
        }
        assert!(leaf.is_full());
        leaf.header.lock();
        let (sep, right_ptr) = leaf.split();
        // SAFETY: right sibling freshly created by split.
        let right = unsafe { &*right_ptr };
        let shared_slice = keyslice(shared).0;
        assert!(sep > shared_slice, "shared-slice run must stay in the left leaf");
        assert_eq!(leaf.permutation().count(), 10);
        assert_eq!(right.permutation().count(), LEAF_WIDTH - 10);
        leaf.header.unlock_with_increment();
        right.header.unlock_with_increment();
        // SAFETY: exclusive access; the one suffix is owned by the left leaf.
        unsafe {
            let perm = leaf.permutation();
            KeyBuf::free(leaf.suffix(perm.slot(9)));
            drop(Box::from_raw(leaf_ptr));
            drop(Box::from_raw(right_ptr));
        }
    }

    #[test]
    fn inner_route_and_insert_separator() {
        let inner_ptr = InnerNode::allocate();
        // SAFETY: single-threaded exclusive access in this test.
        let inner = unsafe { &*inner_ptr };
        let left = LeafNode::allocate();
        let right = LeafNode::allocate();
        let (mm, _) = keyslice(b"mm");
        inner.init_root(mm, left as *mut NodeHeader, right as *mut NodeHeader);
        assert_eq!(inner.route(keyslice(b"aa").0), 0);
        assert_eq!(inner.route(mm), 1);
        assert_eq!(inner.route(keyslice(b"zz").0), 1);
        let far_right = LeafNode::allocate();
        let (tt, _) = keyslice(b"tt");
        inner.insert_separator(1, tt, far_right as *mut NodeHeader);
        assert_eq!(inner.nkeys(), 2);
        assert_eq!(inner.route(keyslice(b"zz").0), 2);
        assert_eq!(inner.route(keyslice(b"nn").0), 1);
        assert_eq!(inner.child(2), far_right as *mut NodeHeader);
        // SAFETY: exclusive teardown.
        unsafe {
            drop(Box::from_raw(left));
            drop(Box::from_raw(right));
            drop(Box::from_raw(far_right));
            drop(Box::from_raw(inner_ptr));
        }
    }

    #[test]
    fn inner_split_promotes_middle_separator() {
        let inner_ptr = InnerNode::allocate();
        // SAFETY: single-threaded exclusive access in this test.
        let inner = unsafe { &*inner_ptr };
        let mut children = Vec::new();
        let first_child = LeafNode::allocate();
        children.push(first_child);
        inner
            .children[0]
            .store(first_child as *mut NodeHeader, Ordering::Release);
        for i in 0..FANOUT {
            let child = LeafNode::allocate();
            children.push(child);
            inner.insert_separator(i, 1000 + i as u64, child as *mut NodeHeader);
        }
        assert!(inner.is_full());
        inner.header.lock();
        let (promoted, right_ptr) = inner.split();
        assert_eq!(promoted, 1000 + (FANOUT / 2) as u64);
        // SAFETY: right sibling freshly created by split.
        let right = unsafe { &*right_ptr };
        assert_eq!(inner.nkeys(), FANOUT / 2);
        assert_eq!(right.nkeys(), FANOUT - FANOUT / 2 - 1);
        inner.header.unlock_with_increment();
        right.header.unlock_with_increment();
        // SAFETY: exclusive teardown of everything allocated above.
        unsafe {
            for c in children {
                drop(Box::from_raw(c));
            }
            drop(Box::from_raw(inner_ptr));
            drop(Box::from_raw(right_ptr));
        }
    }
}
