//! Node structures and low-level node operations for the concurrent B+-tree.
//!
//! Every node starts with a [`NodeHeader`] containing a *version word*:
//!
//! ```text
//!  63                                    2   1    0
//! +----------------------------------------+----+----+
//! |          version counter               |LEAF|LOCK|
//! +----------------------------------------+----+----+
//! ```
//!
//! * `LOCK` — held by a writer while it modifies the node.
//! * `LEAF` — immutable node-kind flag (set for leaf nodes).
//! * counter — incremented on every *structural* change: key inserted or
//!   removed in a leaf, node split, separator installed in an interior node.
//!
//! Readers never write to nodes: they read the version, read the node
//! contents, and re-check the version (the Masstree/OLFIT discipline, paper
//! §3 and §4.6). The version counter is exactly what Silo's node-set
//! validation records for phantom protection.
//!
//! Keys are stored as single atomic pointers to immutable, heap-allocated
//! [`KeyBuf`]s, so a concurrent reader can always dereference whatever
//! pointer it observes: key buffers removed from a node are handed back to
//! the caller, which must defer their destruction through the epoch-based
//! reclamation scheme (`silo-epoch`).

use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};

/// Maximum number of keys per node (leaf and interior).
///
/// The paper sizes nodes at roughly four cache lines; with pointer-sized
/// slots 15–16 keys per node is in the same ballpark and keeps split code
/// exercised even in small unit tests.
pub const FANOUT: usize = 16;

/// Lock bit of the node version word.
pub const NODE_LOCK_BIT: u64 = 1;
/// Leaf-flag bit of the node version word (immutable).
pub const NODE_LEAF_BIT: u64 = 1 << 1;
/// Increment applied to the version counter on each structural change.
pub const NODE_VERSION_INC: u64 = 1 << 2;

/// An immutable, heap-allocated key buffer.
///
/// `KeyBuf`s are never mutated after construction, so concurrent readers may
/// dereference them freely; the only hazard is deallocation, which callers
/// must defer via epoch-based reclamation.
#[derive(Debug)]
pub struct KeyBuf {
    bytes: Box<[u8]>,
}

impl KeyBuf {
    /// Allocates a new key buffer holding a copy of `key` and leaks it,
    /// returning the raw pointer that node slots store.
    pub fn allocate(key: &[u8]) -> *mut KeyBuf {
        Box::into_raw(Box::new(KeyBuf {
            bytes: key.to_vec().into_boxed_slice(),
        }))
    }

    /// The key bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Frees a key buffer previously produced by [`KeyBuf::allocate`].
    ///
    /// # Safety
    ///
    /// `ptr` must have been returned by [`KeyBuf::allocate`], must not have
    /// been freed already, and no thread may dereference it afterwards (i.e.
    /// the call must be deferred past a grace period if the buffer was ever
    /// published in a node).
    pub unsafe fn free(ptr: *mut KeyBuf) {
        debug_assert!(!ptr.is_null());
        // SAFETY: forwarded from the caller's contract.
        unsafe { drop(Box::from_raw(ptr)) };
    }
}

/// Common header shared by leaf and interior nodes. `#[repr(C)]` with the
/// header first lets us cast a `*mut NodeHeader` to the concrete node type
/// once the LEAF bit has been inspected.
#[repr(C)]
#[derive(Debug)]
pub struct NodeHeader {
    version: AtomicU64,
    nkeys: AtomicUsize,
}

impl NodeHeader {
    fn new(is_leaf: bool) -> Self {
        let v = if is_leaf { NODE_LEAF_BIT } else { 0 };
        NodeHeader {
            version: AtomicU64::new(v),
            nkeys: AtomicUsize::new(0),
        }
    }

    /// Loads the raw version word (may include the lock bit).
    pub fn version_raw(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Spins until the lock bit is clear and returns the observed version
    /// word (lock bit clear).
    pub fn stable_version(&self) -> u64 {
        let mut spins = 0u32;
        loop {
            let v = self.version.load(Ordering::Acquire);
            if v & NODE_LOCK_BIT == 0 {
                return v;
            }
            spins = spins.wrapping_add(1);
            if spins % 128 == 0 {
                std::thread::yield_now();
            } else {
                core::hint::spin_loop();
            }
        }
    }

    /// Whether this node is a leaf.
    pub fn is_leaf(&self) -> bool {
        self.version.load(Ordering::Relaxed) & NODE_LEAF_BIT != 0
    }

    /// Acquires the node's write lock (spinning).
    pub fn lock(&self) {
        let mut spins = 0u32;
        loop {
            let v = self.version.load(Ordering::Relaxed);
            if v & NODE_LOCK_BIT == 0
                && self
                    .version
                    .compare_exchange_weak(
                        v,
                        v | NODE_LOCK_BIT,
                        Ordering::Acquire,
                        Ordering::Relaxed,
                    )
                    .is_ok()
            {
                return;
            }
            spins = spins.wrapping_add(1);
            if spins % 128 == 0 {
                std::thread::yield_now();
            } else {
                core::hint::spin_loop();
            }
        }
    }

    /// Attempts to atomically upgrade an optimistic read into the write lock:
    /// succeeds only if the version word still equals `expected_version`
    /// (which must not have the lock bit set). On success the caller holds
    /// the lock and knows the node has not changed since it was read.
    pub fn try_upgrade_lock(&self, expected_version: u64) -> bool {
        debug_assert_eq!(expected_version & NODE_LOCK_BIT, 0);
        self.version
            .compare_exchange(
                expected_version,
                expected_version | NODE_LOCK_BIT,
                Ordering::Acquire,
                Ordering::Relaxed,
            )
            .is_ok()
    }

    /// Releases the write lock without changing the version counter (the node
    /// was locked but not structurally modified).
    pub fn unlock(&self) {
        let v = self.version.load(Ordering::Relaxed);
        debug_assert!(v & NODE_LOCK_BIT != 0);
        self.version.store(v & !NODE_LOCK_BIT, Ordering::Release);
    }

    /// Releases the write lock and increments the version counter (the node
    /// was structurally modified: key inserted/removed, node split, separator
    /// added). Returns the new (unlocked) version word.
    pub fn unlock_with_increment(&self) -> u64 {
        let v = self.version.load(Ordering::Relaxed);
        debug_assert!(v & NODE_LOCK_BIT != 0);
        let new = (v & !NODE_LOCK_BIT) + NODE_VERSION_INC;
        self.version.store(new, Ordering::Release);
        new
    }

    /// Number of keys currently in the node.
    pub fn nkeys(&self) -> usize {
        self.nkeys.load(Ordering::Acquire)
    }

    fn set_nkeys(&self, n: usize) {
        self.nkeys.store(n, Ordering::Release);
    }
}

/// An interior (routing) node: `nkeys` separator keys and `nkeys + 1`
/// children. `children[i]` covers keys `< keys[i]`; `children[nkeys]` covers
/// keys `≥ keys[nkeys - 1]`.
#[repr(C)]
pub struct InnerNode {
    pub header: NodeHeader,
    keys: [AtomicPtr<KeyBuf>; FANOUT],
    children: [AtomicPtr<NodeHeader>; FANOUT + 1],
}

/// A leaf node: `nkeys` sorted key/value entries plus a B-link pointer to the
/// next (right) sibling leaf.
#[repr(C)]
pub struct LeafNode {
    pub header: NodeHeader,
    keys: [AtomicPtr<KeyBuf>; FANOUT],
    values: [AtomicU64; FANOUT],
    next: AtomicPtr<LeafNode>,
}

impl InnerNode {
    /// Allocates a new empty interior node and leaks it.
    pub fn allocate() -> *mut InnerNode {
        Box::into_raw(Box::new(InnerNode {
            header: NodeHeader::new(false),
            keys: [const { AtomicPtr::new(std::ptr::null_mut()) }; FANOUT],
            children: [const { AtomicPtr::new(std::ptr::null_mut()) }; FANOUT + 1],
        }))
    }

    /// The child pointer stored at `idx`.
    pub fn child(&self, idx: usize) -> *mut NodeHeader {
        self.children[idx].load(Ordering::Acquire)
    }

    /// Finds the index of the child that covers `key`.
    ///
    /// Works both under the node lock and optimistically (in the latter case
    /// the result is only meaningful if the version validates afterwards).
    /// Returns `None` if a torn read is detected (null key pointer), telling
    /// the optimistic reader to restart.
    pub fn route(&self, key: &[u8]) -> Option<usize> {
        let n = self.header.nkeys().min(FANOUT);
        let mut idx = 0;
        while idx < n {
            let kptr = self.keys[idx].load(Ordering::Acquire);
            if kptr.is_null() {
                return None;
            }
            // SAFETY: key buffers are immutable and only freed after a grace
            // period, so any non-null pointer observed here is dereferenceable.
            let kb = unsafe { &*kptr };
            if key < kb.bytes() {
                break;
            }
            idx += 1;
        }
        Some(idx)
    }

    /// Inserts separator `key_ptr` with right child `right` at position
    /// `idx`, shifting subsequent entries. Caller must hold the node lock and
    /// guarantee the node is not full.
    pub fn insert_separator(&self, idx: usize, key_ptr: *mut KeyBuf, right: *mut NodeHeader) {
        let n = self.header.nkeys();
        debug_assert!(n < FANOUT);
        debug_assert!(idx <= n);
        // Shift keys [idx, n) right by one and children [idx+1, n+1) right by
        // one, from the top down so concurrent optimistic readers always see
        // initialized slots.
        let mut i = n;
        while i > idx {
            let k = self.keys[i - 1].load(Ordering::Relaxed);
            self.keys[i].store(k, Ordering::Release);
            let c = self.children[i].load(Ordering::Relaxed);
            self.children[i + 1].store(c, Ordering::Release);
            i -= 1;
        }
        self.keys[idx].store(key_ptr, Ordering::Release);
        self.children[idx + 1].store(right, Ordering::Release);
        self.header.set_nkeys(n + 1);
    }

    /// Initializes a fresh root with a single separator and two children.
    /// Caller owns the node exclusively.
    pub fn init_root(&self, key_ptr: *mut KeyBuf, left: *mut NodeHeader, right: *mut NodeHeader) {
        self.keys[0].store(key_ptr, Ordering::Release);
        self.children[0].store(left, Ordering::Release);
        self.children[1].store(right, Ordering::Release);
        self.header.set_nkeys(1);
    }

    /// Whether inserting one more separator would overflow the node.
    pub fn is_full(&self) -> bool {
        self.header.nkeys() >= FANOUT
    }

    /// Splits this (full, locked) node: the upper half of the separators and
    /// children move to a freshly allocated right sibling, and the middle
    /// separator is *promoted* (returned) for insertion into the parent.
    ///
    /// Returns `(promoted_separator, right_sibling)`. The caller must hold
    /// this node's lock; the right sibling is returned locked so the caller
    /// can publish it before any other writer touches it.
    pub fn split(&self) -> (*mut KeyBuf, *mut InnerNode) {
        let n = self.header.nkeys();
        debug_assert_eq!(n, FANOUT);
        let mid = n / 2;
        let right = InnerNode::allocate();
        // SAFETY: freshly allocated, exclusively owned until published.
        let right_ref = unsafe { &*right };
        right_ref.header.lock();
        let promoted = self.keys[mid].load(Ordering::Relaxed);
        let mut j = 0;
        for i in (mid + 1)..n {
            let k = self.keys[i].load(Ordering::Relaxed);
            right_ref.keys[j].store(k, Ordering::Release);
            let c = self.children[i].load(Ordering::Relaxed);
            right_ref.children[j].store(c, Ordering::Release);
            j += 1;
        }
        let last_child = self.children[n].load(Ordering::Relaxed);
        right_ref.children[j].store(last_child, Ordering::Release);
        right_ref.header.set_nkeys(j);
        self.header.set_nkeys(mid);
        (promoted, right)
    }

    /// Frees this node and (recursively) its subtree, including key buffers.
    ///
    /// # Safety
    ///
    /// Requires exclusive access to the whole subtree (no concurrent readers
    /// or writers), e.g. during `Tree::drop`.
    pub unsafe fn free_subtree(ptr: *mut InnerNode) {
        // SAFETY: exclusive access per the caller's contract.
        let node = unsafe { Box::from_raw(ptr) };
        let n = node.header.nkeys();
        for i in 0..n {
            let k = node.keys[i].load(Ordering::Relaxed);
            if !k.is_null() {
                // SAFETY: separators in [0, nkeys) are owned by this node.
                unsafe { KeyBuf::free(k) };
            }
        }
        for i in 0..=n {
            let c = node.children[i].load(Ordering::Relaxed);
            if c.is_null() {
                continue;
            }
            // SAFETY: children in [0, nkeys] are owned by this node.
            unsafe {
                if (*c).is_leaf() {
                    LeafNode::free(c as *mut LeafNode);
                } else {
                    InnerNode::free_subtree(c as *mut InnerNode);
                }
            }
        }
    }
}

/// Outcome of searching a leaf for a key under the leaf lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeafSearch {
    /// Key present at the given slot.
    Found(usize),
    /// Key absent; it would belong at the given slot.
    NotFound(usize),
}

impl LeafNode {
    /// Allocates a new empty leaf and leaks it.
    pub fn allocate() -> *mut LeafNode {
        Box::into_raw(Box::new(LeafNode {
            header: NodeHeader::new(true),
            keys: [const { AtomicPtr::new(std::ptr::null_mut()) }; FANOUT],
            values: [const { AtomicU64::new(0) }; FANOUT],
            next: AtomicPtr::new(std::ptr::null_mut()),
        }))
    }

    /// The key stored at `idx` (may be null under optimistic reads of stale
    /// slots).
    pub fn key(&self, idx: usize) -> *mut KeyBuf {
        self.keys[idx].load(Ordering::Acquire)
    }

    /// The value stored at `idx`.
    pub fn value(&self, idx: usize) -> u64 {
        self.values[idx].load(Ordering::Acquire)
    }

    /// Atomically overwrites the value at `idx`. Caller must hold the leaf
    /// lock so the slot cannot move underneath it.
    pub fn set_value(&self, idx: usize, value: u64) {
        self.values[idx].store(value, Ordering::Release);
    }

    /// The right sibling leaf (B-link pointer).
    pub fn next(&self) -> *mut LeafNode {
        self.next.load(Ordering::Acquire)
    }

    /// Binary-searches the (sorted) leaf for `key`.
    ///
    /// Under the leaf lock the result is exact. Optimistic readers must
    /// validate the leaf version afterwards; a torn read (null key pointer)
    /// is reported as `None` so they can restart.
    pub fn search(&self, key: &[u8]) -> Option<LeafSearch> {
        let n = self.header.nkeys().min(FANOUT);
        let mut lo = 0usize;
        let mut hi = n;
        while lo < hi {
            let mid = (lo + hi) / 2;
            let kptr = self.keys[mid].load(Ordering::Acquire);
            if kptr.is_null() {
                return None;
            }
            // SAFETY: non-null key pointers observed in a node are
            // dereferenceable (immutable buffers, deferred reclamation).
            let kb = unsafe { &*kptr };
            match kb.bytes().cmp(key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Some(LeafSearch::Found(mid)),
            }
        }
        Some(LeafSearch::NotFound(lo))
    }

    /// Inserts `(key_ptr, value)` at slot `idx`, shifting subsequent entries
    /// right. Caller must hold the leaf lock and guarantee the leaf is not
    /// full.
    pub fn insert_at(&self, idx: usize, key_ptr: *mut KeyBuf, value: u64) {
        let n = self.header.nkeys();
        debug_assert!(n < FANOUT);
        debug_assert!(idx <= n);
        let mut i = n;
        while i > idx {
            let k = self.keys[i - 1].load(Ordering::Relaxed);
            let v = self.values[i - 1].load(Ordering::Relaxed);
            self.keys[i].store(k, Ordering::Release);
            self.values[i].store(v, Ordering::Release);
            i -= 1;
        }
        self.keys[idx].store(key_ptr, Ordering::Release);
        self.values[idx].store(value, Ordering::Release);
        self.header.set_nkeys(n + 1);
    }

    /// Removes the entry at slot `idx`, shifting subsequent entries left.
    /// Returns the removed key buffer (ownership passes to the caller, which
    /// must defer its destruction) and the removed value. Caller must hold
    /// the leaf lock.
    pub fn remove_at(&self, idx: usize) -> (*mut KeyBuf, u64) {
        let n = self.header.nkeys();
        debug_assert!(idx < n);
        let key = self.keys[idx].load(Ordering::Relaxed);
        let value = self.values[idx].load(Ordering::Relaxed);
        for i in idx..n - 1 {
            let k = self.keys[i + 1].load(Ordering::Relaxed);
            let v = self.values[i + 1].load(Ordering::Relaxed);
            self.keys[i].store(k, Ordering::Release);
            self.values[i].store(v, Ordering::Release);
        }
        self.header.set_nkeys(n - 1);
        (key, value)
    }

    /// Whether inserting one more entry would overflow the leaf.
    pub fn is_full(&self) -> bool {
        self.header.nkeys() >= FANOUT
    }

    /// Splits this (full, locked) leaf: the upper half of the entries move to
    /// a freshly allocated right sibling which is linked into the B-link
    /// chain. Returns `(separator_key_copy, right_sibling)`; the separator is
    /// a *new* key buffer equal to the right sibling's first key (interior
    /// nodes own their separators independently). The right sibling is
    /// returned locked.
    pub fn split(&self) -> (*mut KeyBuf, *mut LeafNode) {
        let n = self.header.nkeys();
        debug_assert_eq!(n, FANOUT);
        let mid = n / 2;
        let right = LeafNode::allocate();
        // SAFETY: freshly allocated, exclusively owned until published.
        let right_ref = unsafe { &*right };
        right_ref.header.lock();
        let mut j = 0;
        for i in mid..n {
            let k = self.keys[i].load(Ordering::Relaxed);
            let v = self.values[i].load(Ordering::Relaxed);
            right_ref.keys[j].store(k, Ordering::Release);
            right_ref.values[j].store(v, Ordering::Release);
            j += 1;
        }
        right_ref.header.set_nkeys(j);
        right_ref
            .next
            .store(self.next.load(Ordering::Relaxed), Ordering::Release);
        self.next.store(right, Ordering::Release);
        self.header.set_nkeys(mid);
        // SAFETY: slot 0 of the right sibling was just initialized above.
        let sep_src = unsafe { &*right_ref.keys[0].load(Ordering::Relaxed) };
        let sep = KeyBuf::allocate(sep_src.bytes());
        (sep, right)
    }

    /// Frees this leaf and the key buffers it owns.
    ///
    /// # Safety
    ///
    /// Requires exclusive access (no concurrent readers or writers).
    pub unsafe fn free(ptr: *mut LeafNode) {
        // SAFETY: exclusive access per the caller's contract.
        let node = unsafe { Box::from_raw(ptr) };
        let n = node.header.nkeys();
        for i in 0..n {
            let k = node.keys[i].load(Ordering::Relaxed);
            if !k.is_null() {
                // SAFETY: entries in [0, nkeys) own their key buffers.
                unsafe { KeyBuf::free(k) };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_lock_and_version_increment() {
        let h = NodeHeader::new(true);
        let v0 = h.stable_version();
        assert!(v0 & NODE_LEAF_BIT != 0);
        h.lock();
        assert!(h.version_raw() & NODE_LOCK_BIT != 0);
        let v1 = h.unlock_with_increment();
        assert_eq!(v1, v0 + NODE_VERSION_INC);
        h.lock();
        h.unlock();
        assert_eq!(h.stable_version(), v1);
    }

    #[test]
    fn leaf_insert_search_remove() {
        let leaf_ptr = LeafNode::allocate();
        // SAFETY: single-threaded exclusive access in this test.
        let leaf = unsafe { &*leaf_ptr };
        for (i, k) in [b"bb".as_ref(), b"dd", b"ff"].iter().enumerate() {
            let pos = match leaf.search(k).unwrap() {
                LeafSearch::NotFound(p) => p,
                LeafSearch::Found(_) => panic!("unexpected"),
            };
            leaf.insert_at(pos, KeyBuf::allocate(k), i as u64 + 10);
        }
        assert_eq!(leaf.header.nkeys(), 3);
        assert_eq!(leaf.search(b"dd").unwrap(), LeafSearch::Found(1));
        assert_eq!(leaf.value(1), 11);
        assert_eq!(leaf.search(b"cc").unwrap(), LeafSearch::NotFound(1));
        let (kptr, v) = leaf.remove_at(1);
        assert_eq!(v, 11);
        // SAFETY: the buffer was never shared beyond this test.
        unsafe { KeyBuf::free(kptr) };
        assert_eq!(leaf.search(b"dd").unwrap(), LeafSearch::NotFound(1));
        assert_eq!(leaf.header.nkeys(), 2);
        // SAFETY: exclusive access.
        unsafe { LeafNode::free(leaf_ptr) };
    }

    #[test]
    fn leaf_split_moves_upper_half_and_links_sibling() {
        let leaf_ptr = LeafNode::allocate();
        // SAFETY: single-threaded exclusive access in this test.
        let leaf = unsafe { &*leaf_ptr };
        for i in 0..FANOUT {
            let key = format!("key{:03}", i);
            leaf.insert_at(i, KeyBuf::allocate(key.as_bytes()), i as u64);
        }
        assert!(leaf.is_full());
        leaf.header.lock();
        let (sep, right_ptr) = leaf.split();
        // SAFETY: right sibling freshly created by split.
        let right = unsafe { &*right_ptr };
        assert_eq!(leaf.header.nkeys(), FANOUT / 2);
        assert_eq!(right.header.nkeys(), FANOUT - FANOUT / 2);
        // SAFETY: separator allocated by split.
        let sep_bytes = unsafe { (*sep).bytes().to_vec() };
        assert_eq!(sep_bytes, format!("key{:03}", FANOUT / 2).into_bytes());
        assert_eq!(leaf.next(), right_ptr);
        leaf.header.unlock_with_increment();
        right.header.unlock_with_increment();
        // SAFETY: exclusive access; separator not installed anywhere.
        unsafe {
            KeyBuf::free(sep);
            LeafNode::free(leaf_ptr);
            LeafNode::free(right_ptr);
        }
    }

    #[test]
    fn inner_route_and_insert_separator() {
        let inner_ptr = InnerNode::allocate();
        // SAFETY: single-threaded exclusive access in this test.
        let inner = unsafe { &*inner_ptr };
        let left = LeafNode::allocate();
        let right = LeafNode::allocate();
        inner.init_root(
            KeyBuf::allocate(b"mm"),
            left as *mut NodeHeader,
            right as *mut NodeHeader,
        );
        assert_eq!(inner.route(b"aa"), Some(0));
        assert_eq!(inner.route(b"mm"), Some(1));
        assert_eq!(inner.route(b"zz"), Some(1));
        let far_right = LeafNode::allocate();
        inner.insert_separator(1, KeyBuf::allocate(b"tt"), far_right as *mut NodeHeader);
        assert_eq!(inner.header.nkeys(), 2);
        assert_eq!(inner.route(b"zz"), Some(2));
        assert_eq!(inner.route(b"nn"), Some(1));
        assert_eq!(inner.child(2), far_right as *mut NodeHeader);
        // SAFETY: exclusive access; frees the whole two-level structure.
        unsafe { InnerNode::free_subtree(inner_ptr) };
    }

    #[test]
    fn inner_split_promotes_middle_separator() {
        let inner_ptr = InnerNode::allocate();
        // SAFETY: single-threaded exclusive access in this test.
        let inner = unsafe { &*inner_ptr };
        // Build a full inner node with FANOUT separators and FANOUT+1 leaf children.
        let first_child = LeafNode::allocate();
        inner.children[0].store(first_child as *mut NodeHeader, Ordering::Release);
        for i in 0..FANOUT {
            let key = format!("sep{:03}", i);
            let child = LeafNode::allocate();
            inner.insert_separator(i, KeyBuf::allocate(key.as_bytes()), child as *mut NodeHeader);
        }
        assert!(inner.is_full());
        inner.header.lock();
        let (promoted, right_ptr) = inner.split();
        // SAFETY: promoted separator allocated earlier in this test.
        let promoted_bytes = unsafe { (*promoted).bytes().to_vec() };
        assert_eq!(promoted_bytes, format!("sep{:03}", FANOUT / 2).into_bytes());
        // SAFETY: right sibling freshly created by split.
        let right = unsafe { &*right_ptr };
        assert_eq!(inner.header.nkeys(), FANOUT / 2);
        assert_eq!(right.header.nkeys(), FANOUT - FANOUT / 2 - 1);
        inner.header.unlock_with_increment();
        right.header.unlock_with_increment();
        // SAFETY: exclusive teardown of both halves plus the promoted key.
        unsafe {
            KeyBuf::free(promoted);
            InnerNode::free_subtree(inner_ptr);
            InnerNode::free_subtree(right_ptr);
        }
    }
}
