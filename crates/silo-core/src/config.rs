//! Engine configuration, including the factor-analysis knobs of paper §5.7.

use silo_epoch::EpochConfig;

/// Configuration of a [`crate::Database`].
///
/// The defaults correspond to "MemSilo" as evaluated in the paper: in-place
/// overwrites, snapshots, garbage collection and decentralized TIDs all
/// enabled. The individual knobs reproduce the configurations of the factor
/// analysis (Figure 11) and the `MemSilo+GlobalTID` variant (Figure 4).
///
/// The struct is `#[non_exhaustive]`: construct it with [`Default`] or one of
/// the named presets and refine it with the builder-style `with_*` methods,
/// so new knobs are never a breaking change for downstream code:
///
/// ```
/// use silo_core::SiloConfig;
///
/// let config = SiloConfig::default()
///     .with_spawn_epoch_advancer(false)
///     .with_read_retry_limit(8);
/// assert!(!config.spawn_epoch_advancer);
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct SiloConfig {
    /// Epoch subsystem configuration (epoch period, snapshot interval `k`).
    pub epoch: EpochConfig,
    /// Spawn the background epoch-advancer thread when the database opens.
    /// Tests that want deterministic epochs advance manually instead.
    pub spawn_epoch_advancer: bool,
    /// `+Overwrites`: modify record data in place when the new value fits and
    /// no snapshot needs the old version. Disabling this reproduces the
    /// "Simple"/"+Allocator" bars of Figure 11, where every write allocates a
    /// new record.
    pub overwrite_in_place: bool,
    /// `+NoSnapshots` (inverted): keep previous record versions so read-only
    /// snapshot transactions can run (§4.9). Disabling also disables the
    /// snapshot overwrite rule, so updates always overwrite when possible.
    pub enable_snapshots: bool,
    /// `+NoGC` (inverted): run the epoch-based garbage collector in workers
    /// between transactions (§4.8). Disabling leaks superseded versions until
    /// the database is dropped.
    pub enable_gc: bool,
    /// `MemSilo+GlobalTID`: draw commit TIDs from a single shared atomic
    /// counter instead of the decentralized per-worker rule (§5.2).
    pub global_tid: bool,
    /// `+Allocator`: recycle record allocations through a per-worker,
    /// size-classed pool refilled by that worker's garbage collector. This is
    /// the laptop-scale stand-in for the paper's NUMA-aware superpage
    /// allocator (see DESIGN.md §4).
    pub per_worker_pool: bool,
    /// How many times a read retries a record that is no longer the latest
    /// version (because a concurrent writer superseded it) before the
    /// transaction gives up and aborts.
    pub read_retry_limit: usize,
    /// Run garbage collection in a worker after this many transactions.
    pub gc_interval_txns: u64,
}

impl Default for SiloConfig {
    fn default() -> Self {
        SiloConfig {
            epoch: EpochConfig::default(),
            spawn_epoch_advancer: true,
            overwrite_in_place: true,
            enable_snapshots: true,
            enable_gc: true,
            global_tid: false,
            per_worker_pool: true,
            read_retry_limit: 16,
            gc_interval_txns: 64,
        }
    }
}

impl SiloConfig {
    /// A configuration suited to unit tests: fast epochs, no background
    /// advancer thread (tests advance epochs explicitly when needed).
    pub fn for_testing() -> Self {
        SiloConfig {
            epoch: EpochConfig {
                epoch_interval: std::time::Duration::from_millis(1),
                snapshot_interval_epochs: 5,
            },
            spawn_epoch_advancer: false,
            ..Default::default()
        }
    }

    /// The paper's "Simple" configuration from the Figure 11 factor analysis:
    /// no per-worker allocator pool and a new record allocation for every
    /// write.
    pub fn simple() -> Self {
        SiloConfig {
            overwrite_in_place: false,
            per_worker_pool: false,
            ..Default::default()
        }
    }

    /// Returns a copy with snapshots disabled (`+NoSnapshots`).
    pub fn without_snapshots(mut self) -> Self {
        self.enable_snapshots = false;
        self
    }

    /// Returns a copy with garbage collection disabled (`+NoGC`).
    pub fn without_gc(mut self) -> Self {
        self.enable_gc = false;
        self
    }

    /// Returns a copy using the centralized TID counter (`MemSilo+GlobalTID`).
    pub fn with_global_tid(mut self) -> Self {
        self.global_tid = true;
        self
    }

    /// Sets the epoch subsystem configuration (period, snapshot interval).
    pub fn with_epoch(mut self, epoch: EpochConfig) -> Self {
        self.epoch = epoch;
        self
    }

    /// Enables or disables the background epoch-advancer thread.
    pub fn with_spawn_epoch_advancer(mut self, spawn: bool) -> Self {
        self.spawn_epoch_advancer = spawn;
        self
    }

    /// Enables or disables in-place overwrites (`+Overwrites`).
    pub fn with_overwrite_in_place(mut self, enable: bool) -> Self {
        self.overwrite_in_place = enable;
        self
    }

    /// Enables or disables snapshot version retention (§4.9).
    pub fn with_snapshots(mut self, enable: bool) -> Self {
        self.enable_snapshots = enable;
        self
    }

    /// Enables or disables the epoch-based garbage collector (§4.8).
    pub fn with_gc(mut self, enable: bool) -> Self {
        self.enable_gc = enable;
        self
    }

    /// Enables or disables the per-worker allocation pool (`+Allocator`).
    pub fn with_per_worker_pool(mut self, enable: bool) -> Self {
        self.per_worker_pool = enable;
        self
    }

    /// Sets the unstable-read retry limit before a transaction aborts.
    pub fn with_read_retry_limit(mut self, limit: usize) -> Self {
        self.read_retry_limit = limit;
        self
    }

    /// Sets how many transactions a worker runs between GC passes.
    pub fn with_gc_interval_txns(mut self, interval: u64) -> Self {
        self.gc_interval_txns = interval;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_memsilo() {
        let c = SiloConfig::default();
        assert!(c.overwrite_in_place);
        assert!(c.enable_snapshots);
        assert!(c.enable_gc);
        assert!(!c.global_tid);
        assert!(c.per_worker_pool);
    }

    #[test]
    fn builder_style_knobs() {
        let c = SiloConfig::default()
            .without_snapshots()
            .without_gc()
            .with_global_tid();
        assert!(!c.enable_snapshots);
        assert!(!c.enable_gc);
        assert!(c.global_tid);
    }

    #[test]
    fn simple_disables_allocator_and_overwrites() {
        let c = SiloConfig::simple();
        assert!(!c.overwrite_in_place);
        assert!(!c.per_worker_pool);
    }
}
