//! Session vocabulary over an embedded database.
//!
//! A [`Session`] wraps a [`Worker`] with the same verbs the network client
//! (`silo-client`) exposes over the wire — `open_table`, `get`, `put`,
//! `insert`, `delete`, `scan`, `transact` — so code written against an
//! embedded database reads the same as code written against a `silo-net`
//! server, and migrating between the two is a connection change, not a
//! rewrite.
//!
//! Single-operation verbs run as one-shot committed transactions and retry
//! transient OCC aborts (read/node validation, unstable reads) a few times
//! before giving up; non-transient aborts (duplicate key, user-requested)
//! surface immediately. Multi-operation logic goes through
//! [`Session::transact`], which runs a closure inside one transaction and
//! commits it — retries there belong to the caller, who knows whether the
//! closure is idempotent.

use std::sync::Arc;

use crate::database::{Database, TableId};
use crate::error::{Abort, AbortReason};
use crate::txn::Txn;
use crate::worker::Worker;
use silo_tid::Tid;

/// How many times single-operation verbs retry transient OCC aborts.
const SINGLE_OP_RETRIES: usize = 3;

/// A worker wrapped in the session vocabulary shared with `silo-client`.
///
/// Obtain one with [`Database::session`]. Like the [`Worker`] it owns, a
/// session is single-threaded; spawn one per thread.
///
/// ```
/// use silo_core::{Database, SiloConfig};
///
/// let db = Database::open(SiloConfig::for_testing());
/// let mut session = db.session();
/// let table = session.open_table("kv").unwrap();
/// session.put(table, b"hello", b"world").unwrap();
/// assert_eq!(session.get(table, b"hello").unwrap().as_deref(), Some(&b"world"[..]));
/// ```
pub struct Session {
    worker: Worker,
}

impl Session {
    pub(crate) fn new(worker: Worker) -> Self {
        Session { worker }
    }

    /// The underlying worker, for APIs the session vocabulary doesn't cover
    /// (snapshot transactions, GC, stats).
    pub fn worker(&mut self) -> &mut Worker {
        &mut self.worker
    }

    /// The database this session runs against.
    pub fn database(&self) -> &Arc<Database> {
        self.worker.database()
    }

    /// Returns the id of the named table, creating it if it doesn't exist.
    ///
    /// Mirrors the client's `Session::open_table`. Losing a creation race is
    /// handled by re-reading the catalog, so in the current catalog (tables
    /// are never dropped) this cannot fail; the `Result` exists for
    /// signature parity with the networked session.
    pub fn open_table(&mut self, name: &str) -> Result<TableId, Abort> {
        let db = Arc::clone(self.worker.database());
        if let Ok(id) = db.table_id(name) {
            return Ok(id);
        }
        match db.create_table(name) {
            Ok(id) => Ok(id),
            // Lost a creation race: the table exists now.
            Err(_) => db
                .table_id(name)
                .map_err(|_| Abort(AbortReason::UserRequested)),
        }
    }

    /// Reads `key`, committing a one-shot transaction.
    pub fn get(&mut self, table: TableId, key: &[u8]) -> Result<Option<Vec<u8>>, Abort> {
        self.retry(|txn| txn.read(table, key)).map(|(v, _)| v)
    }

    /// Writes (inserts or overwrites) `key`, committing a one-shot
    /// transaction. Returns the commit [`Tid`].
    pub fn put(&mut self, table: TableId, key: &[u8], value: &[u8]) -> Result<Tid, Abort> {
        self.retry(|txn| txn.write(table, key, value))
            .map(|((), tid)| tid)
    }

    /// Inserts `key`, aborting with [`AbortReason::DuplicateKey`] if it
    /// already exists; commits a one-shot transaction. Returns the commit
    /// [`Tid`].
    pub fn insert(&mut self, table: TableId, key: &[u8], value: &[u8]) -> Result<Tid, Abort> {
        self.retry(|txn| txn.insert(table, key, value))
            .map(|((), tid)| tid)
    }

    /// Deletes `key`, committing a one-shot transaction. Returns whether the
    /// key existed.
    pub fn delete(&mut self, table: TableId, key: &[u8]) -> Result<bool, Abort> {
        self.retry(|txn| txn.delete(table, key)).map(|(v, _)| v)
    }

    /// Scans `[start, end)` (unbounded when `end` is `None`) up to `limit`
    /// entries, committing a one-shot transaction.
    pub fn scan(
        &mut self,
        table: TableId,
        start: &[u8],
        end: Option<&[u8]>,
        limit: Option<usize>,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>, Abort> {
        self.retry(|txn| txn.scan(table, start, end, limit))
            .map(|(v, _)| v)
    }

    /// Runs `body` inside one transaction and commits it, returning the
    /// closure's value and the commit [`Tid`]. The transaction aborts (and
    /// the write set is discarded) if `body` returns `Err`.
    ///
    /// No automatic retry: whether re-running `body` is safe is the caller's
    /// call. Transient aborts are identifiable via [`AbortReason`].
    pub fn transact<T>(
        &mut self,
        body: impl FnOnce(&mut Txn<'_>) -> Result<T, Abort>,
    ) -> Result<(T, Tid), Abort> {
        let mut txn = self.worker.begin();
        match body(&mut txn) {
            Ok(value) => txn.commit().map(|tid| (value, tid)),
            Err(abort) => {
                txn.abort();
                Err(abort)
            }
        }
    }

    /// Marks the session quiescent so an idle session never stalls the
    /// global epoch (see `silo_epoch::EpochManager`).
    pub fn quiesce(&self) {
        self.worker.quiesce();
    }

    fn retry<T>(
        &mut self,
        mut op: impl FnMut(&mut Txn<'_>) -> Result<T, Abort>,
    ) -> Result<(T, Tid), Abort> {
        let mut last = Abort(AbortReason::ReadValidation);
        for _ in 0..SINGLE_OP_RETRIES {
            let mut txn = self.worker.begin();
            match op(&mut txn) {
                Ok(value) => match txn.commit() {
                    Ok(tid) => return Ok((value, tid)),
                    Err(abort) => last = abort,
                },
                Err(abort) => {
                    txn.abort();
                    last = abort;
                }
            }
            match last.0 {
                // Deterministic outcomes: retrying cannot change them.
                AbortReason::DuplicateKey | AbortReason::UserRequested => return Err(last),
                _ => {}
            }
        }
        Err(last)
    }
}

impl Database {
    /// Opens a [`Session`] — the embedded counterpart of connecting a
    /// `silo-client` session to a `silo-net` server.
    pub fn session(self: &Arc<Self>) -> Session {
        Session::new(self.register_worker())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SiloConfig;

    #[test]
    fn session_verbs_roundtrip() {
        let db = Database::open(SiloConfig::for_testing());
        let mut s = db.session();
        let t = s.open_table("kv").expect("open");
        assert_eq!(s.open_table("kv").expect("idempotent"), t);

        assert_eq!(s.get(t, b"a").expect("get"), None);
        s.put(t, b"a", b"1").expect("put");
        s.insert(t, b"b", b"2").expect("insert");
        assert_eq!(
            s.insert(t, b"b", b"2").expect_err("dup").0,
            AbortReason::DuplicateKey
        );
        assert_eq!(s.get(t, b"a").expect("get").as_deref(), Some(&b"1"[..]));

        let ((ra, rb), _tid) = s
            .transact(|txn| {
                let ra = txn.read(t, b"a")?;
                txn.write(t, b"c", b"3")?;
                let rb = txn.read(t, b"b")?;
                Ok((ra, rb))
            })
            .expect("transact");
        assert_eq!(ra.as_deref(), Some(&b"1"[..]));
        assert_eq!(rb.as_deref(), Some(&b"2"[..]));

        let entries = s.scan(t, b"", None, None).expect("scan");
        assert_eq!(
            entries.iter().map(|(k, _)| k.as_slice()).collect::<Vec<_>>(),
            vec![&b"a"[..], &b"b"[..], &b"c"[..]]
        );

        assert!(s.delete(t, b"a").expect("delete"));
        assert!(!s.delete(t, b"a").expect("delete missing"));

        let aborted = s.transact(|txn| {
            txn.write(t, b"never", b"x")?;
            Err::<(), _>(Abort(AbortReason::UserRequested))
        });
        assert!(aborted.is_err());
        assert_eq!(s.get(t, b"never").expect("get"), None);
    }
}
