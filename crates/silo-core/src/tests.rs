//! Engine-level tests: single-threaded semantics, conflict behaviour,
//! snapshots, garbage collection and multi-threaded serializability checks.

use super::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn test_db() -> Arc<Database> {
    Database::open(SiloConfig::for_testing())
}

/// Advances the global epoch by `n`, marking the given workers quiescent so
/// the epoch invariant does not hold the advance back.
fn advance_epochs(db: &Arc<Database>, workers: &[&Worker], n: u64) {
    for w in workers {
        w.quiesce();
    }
    db.epochs().advance_n(n);
}

#[test]
fn write_then_read_back() {
    let db = test_db();
    let t = db.create_table("t").unwrap();
    let mut w = db.register_worker();

    let mut txn = w.begin();
    txn.write(t, b"k1", b"v1").unwrap();
    txn.write(t, b"k2", b"v2").unwrap();
    let tid = txn.commit().unwrap();
    assert!(tid > Tid::ZERO);

    let mut txn = w.begin();
    assert_eq!(txn.read(t, b"k1").unwrap(), Some(b"v1".to_vec()));
    assert_eq!(txn.read(t, b"k2").unwrap(), Some(b"v2".to_vec()));
    assert_eq!(txn.read(t, b"k3").unwrap(), None);
    txn.commit().unwrap();
    assert_eq!(w.stats().commits, 2);
}

#[test]
fn read_your_own_writes_and_deletes() {
    let db = test_db();
    let t = db.create_table("t").unwrap();
    let mut w = db.register_worker();

    let mut txn = w.begin();
    txn.write(t, b"a", b"1").unwrap();
    assert_eq!(txn.read(t, b"a").unwrap(), Some(b"1".to_vec()));
    txn.write(t, b"a", b"2").unwrap();
    assert_eq!(txn.read(t, b"a").unwrap(), Some(b"2".to_vec()));
    txn.delete(t, b"a").unwrap();
    assert_eq!(txn.read(t, b"a").unwrap(), None);
    txn.commit().unwrap();

    let mut txn = w.begin();
    assert_eq!(txn.read(t, b"a").unwrap(), None);
    txn.commit().unwrap();
}

#[test]
fn update_returns_existence() {
    let db = test_db();
    let t = db.create_table("t").unwrap();
    let mut w = db.register_worker();

    let mut txn = w.begin();
    assert!(!txn.update(t, b"missing", b"x").unwrap());
    txn.write(t, b"present", b"1").unwrap();
    txn.commit().unwrap();

    let mut txn = w.begin();
    assert!(txn.update(t, b"present", b"2").unwrap());
    txn.commit().unwrap();

    let mut txn = w.begin();
    assert_eq!(txn.read(t, b"present").unwrap(), Some(b"2".to_vec()));
    txn.commit().unwrap();
}

#[test]
fn insert_duplicate_aborts() {
    let db = test_db();
    let t = db.create_table("t").unwrap();
    let mut w = db.register_worker();

    let mut txn = w.begin();
    txn.insert(t, b"k", b"v").unwrap();
    txn.commit().unwrap();

    let mut txn = w.begin();
    let err = txn.insert(t, b"k", b"v2").unwrap_err();
    assert_eq!(err.0, AbortReason::DuplicateKey);
    assert!(txn.commit().is_err());
    assert_eq!(w.stats().aborts, 1);
    assert_eq!(w.stats().abort_reasons.duplicate_key, 1);

    // The original value is untouched.
    let mut txn = w.begin();
    assert_eq!(txn.read(t, b"k").unwrap(), Some(b"v".to_vec()));
    txn.commit().unwrap();
}

#[test]
fn insert_after_delete_reuses_key() {
    let db = test_db();
    let t = db.create_table("t").unwrap();
    let mut w = db.register_worker();

    let mut txn = w.begin();
    txn.insert(t, b"k", b"v1").unwrap();
    txn.commit().unwrap();

    let mut txn = w.begin();
    assert!(txn.delete(t, b"k").unwrap());
    txn.commit().unwrap();

    let mut txn = w.begin();
    assert_eq!(txn.read(t, b"k").unwrap(), None);
    txn.insert(t, b"k", b"v2").unwrap();
    txn.commit().unwrap();

    let mut txn = w.begin();
    assert_eq!(txn.read(t, b"k").unwrap(), Some(b"v2".to_vec()));
    txn.commit().unwrap();
}

#[test]
fn delete_missing_key_is_noop() {
    let db = test_db();
    let t = db.create_table("t").unwrap();
    let mut w = db.register_worker();
    let mut txn = w.begin();
    assert!(!txn.delete(t, b"ghost").unwrap());
    txn.commit().unwrap();
}

#[test]
fn scan_returns_sorted_committed_data() {
    let db = test_db();
    let t = db.create_table("t").unwrap();
    let mut w = db.register_worker();

    let mut txn = w.begin();
    for i in 0..50u32 {
        txn.write(
            t,
            format!("key{:03}", i).as_bytes(),
            format!("val{}", i).as_bytes(),
        )
        .unwrap();
    }
    txn.commit().unwrap();

    let mut txn = w.begin();
    let rows = txn.scan(t, b"key010", Some(b"key020"), None).unwrap();
    assert_eq!(rows.len(), 10);
    assert_eq!(rows[0].0, b"key010".to_vec());
    assert_eq!(rows[9].1, b"val19".to_vec());
    let limited = txn.scan(t, b"key000", None, Some(5)).unwrap();
    assert_eq!(limited.len(), 5);
    txn.commit().unwrap();
}

#[test]
fn scan_skips_deleted_keys() {
    let db = test_db();
    let t = db.create_table("t").unwrap();
    let mut w = db.register_worker();

    let mut txn = w.begin();
    for i in 0..10u32 {
        txn.write(t, format!("k{}", i).as_bytes(), b"v").unwrap();
    }
    txn.commit().unwrap();

    let mut txn = w.begin();
    txn.delete(t, b"k3").unwrap();
    txn.delete(t, b"k7").unwrap();
    txn.commit().unwrap();

    let mut txn = w.begin();
    let rows = txn.scan(t, b"k", None, None).unwrap();
    assert_eq!(rows.len(), 8);
    assert!(!rows.iter().any(|(k, _)| k == b"k3" || k == b"k7"));
    txn.commit().unwrap();
}

#[test]
fn scan_overlays_own_updates() {
    let db = test_db();
    let t = db.create_table("t").unwrap();
    let mut w = db.register_worker();

    let mut txn = w.begin();
    txn.write(t, b"a", b"old").unwrap();
    txn.commit().unwrap();

    let mut txn = w.begin();
    txn.write(t, b"a", b"new").unwrap();
    let rows = txn.scan(t, b"", None, None).unwrap();
    assert_eq!(rows, vec![(b"a".to_vec(), b"new".to_vec())]);
    txn.commit().unwrap();
}

#[test]
fn read_write_conflict_aborts_second_committer() {
    let db = test_db();
    let t = db.create_table("t").unwrap();
    let mut w1 = db.register_worker();
    let mut w2 = db.register_worker();

    {
        let mut setup = w1.begin();
        setup.write(t, b"x", b"0").unwrap();
        setup.commit().unwrap();
    }

    // t1 reads x, then t2 overwrites x and commits, then t1 tries to commit a
    // write based on its stale read: t1 must abort.
    let mut t1 = w1.begin();
    let x = t1.read(t, b"x").unwrap().unwrap();

    let mut t2 = w2.begin();
    t2.write(t, b"x", b"99").unwrap();
    t2.commit().unwrap();

    t1.write(t, b"y", &x).unwrap();
    let result = t1.commit();
    assert!(result.is_err());
    assert_eq!(w1.stats().abort_reasons.read_validation, 1);
}

#[test]
fn write_skew_is_prevented() {
    // Figure 3 of the paper: x = y = 1 must not be reachable from x = y = 0.
    let db = test_db();
    let t = db.create_table("t").unwrap();
    let mut w1 = db.register_worker();
    let mut w2 = db.register_worker();

    {
        let mut setup = w1.begin();
        setup.write(t, b"x", b"0").unwrap();
        setup.write(t, b"y", b"0").unwrap();
        setup.commit().unwrap();
    }

    let mut t1 = w1.begin();
    let x = t1.read(t, b"x").unwrap().unwrap();
    let mut t2 = w2.begin();
    let y = t2.read(t, b"y").unwrap().unwrap();
    // Each writes the other record based on its read.
    t1.write(t, b"y", &[x[0] + 1]).unwrap();
    t2.write(t, b"x", &[y[0] + 1]).unwrap();
    let r1 = t1.commit();
    let r2 = t2.commit();
    assert!(
        !(r1.is_ok() && r2.is_ok()),
        "both committing would be write skew (non-serializable)"
    );
}

#[test]
fn phantom_protection_on_scans() {
    let db = test_db();
    let t = db.create_table("t").unwrap();
    let mut w1 = db.register_worker();
    let mut w2 = db.register_worker();

    {
        let mut setup = w1.begin();
        for i in 0..20u32 {
            setup
                .write(t, format!("k{:02}", i).as_bytes(), b"v")
                .unwrap();
        }
        setup.commit().unwrap();
    }

    // t1 scans a range; t2 inserts a key into that range and commits; t1's
    // commit must fail node-set validation.
    let mut t1 = w1.begin();
    let rows = t1.scan(t, b"k05", Some(b"k15"), None).unwrap();
    assert_eq!(rows.len(), 10);

    let mut t2 = w2.begin();
    t2.insert(t, b"k07x", b"phantom").unwrap();
    t2.commit().unwrap();

    // t1 is doomed either way. Depending on which leaf its own insert lands
    // in, the conflict is caught early by the §4.6 node-set fix-up (the
    // insert touches the leaf t2 changed) or by commit-time node-set
    // validation.
    match t1.write(t, b"summary", b"10-rows") {
        Ok(()) => assert!(t1.commit().is_err()),
        // Dropping the poisoned transaction aborts it with the fix-up
        // failure as the recorded reason.
        Err(_) => drop(t1),
    }
    let reasons = &w1.stats().abort_reasons;
    assert_eq!(reasons.node_validation + reasons.node_set_fixup, 1);
}

#[test]
fn phantom_protection_on_absent_reads() {
    let db = test_db();
    let t = db.create_table("t").unwrap();
    let mut w1 = db.register_worker();
    let mut w2 = db.register_worker();

    // t1 reads a missing key; t2 inserts it; t1 commits a dependent write.
    let mut t1 = w1.begin();
    assert_eq!(t1.read(t, b"missing").unwrap(), None);

    let mut t2 = w2.begin();
    t2.insert(t, b"missing", b"now-present").unwrap();
    t2.commit().unwrap();

    // The conflict may surface either at the dependent write (node-set fix-up
    // against the leaf t2 just changed) or at commit-time validation; either
    // way t1 must not commit.
    let outcome = match t1.write(t, b"dependent", b"x") {
        Ok(()) => t1.commit().map(|_| ()),
        Err(e) => {
            t1.abort();
            Err(e)
        }
    };
    assert!(outcome.is_err());
    assert!(w1.stats().aborts >= 1);
}

#[test]
fn own_insert_does_not_invalidate_own_scan() {
    let db = test_db();
    let t = db.create_table("t").unwrap();
    let mut w = db.register_worker();

    let mut setup = w.begin();
    for i in 0..10u32 {
        setup
            .write(t, format!("k{:02}", i).as_bytes(), b"v")
            .unwrap();
    }
    setup.commit().unwrap();

    // A transaction that scans a range and then inserts into it must still
    // commit (§4.6: its own structural changes are fixed up, not treated as
    // conflicts).
    let mut txn = w.begin();
    let rows = txn.scan(t, b"k00", Some(b"k99"), None).unwrap();
    assert_eq!(rows.len(), 10);
    txn.insert(t, b"k05x", b"mine").unwrap();
    txn.commit().unwrap();
}

#[test]
fn aborted_insert_leaves_no_visible_key() {
    let db = test_db();
    let t = db.create_table("t").unwrap();
    let mut w = db.register_worker();

    let mut txn = w.begin();
    txn.insert(t, b"temp", b"value").unwrap();
    txn.abort();

    let mut txn = w.begin();
    assert_eq!(txn.read(t, b"temp").unwrap(), None);
    // Re-inserting after the abort works (the placeholder is absent).
    txn.insert(t, b"temp", b"second-try").unwrap();
    txn.commit().unwrap();

    let mut txn = w.begin();
    assert_eq!(txn.read(t, b"temp").unwrap(), Some(b"second-try".to_vec()));
    txn.commit().unwrap();
}

#[test]
fn dropping_txn_without_commit_aborts() {
    let db = test_db();
    let t = db.create_table("t").unwrap();
    let mut w = db.register_worker();
    {
        let mut txn = w.begin();
        txn.write(t, b"k", b"v").unwrap();
        // dropped here
    }
    assert_eq!(w.stats().aborts, 1);
    let mut txn = w.begin();
    assert_eq!(txn.read(t, b"k").unwrap(), None);
    txn.commit().unwrap();
}

#[test]
fn tids_are_monotonic_per_worker_and_epoch_tagged() {
    let db = test_db();
    let t = db.create_table("t").unwrap();
    let mut w = db.register_worker();
    let mut prev = Tid::ZERO;
    for i in 0..10u32 {
        let mut txn = w.begin();
        txn.write(t, format!("k{}", i).as_bytes(), b"v").unwrap();
        let tid = txn.commit().unwrap();
        assert!(tid > prev);
        assert!(tid.epoch() >= 1);
        prev = tid;
    }
    // Epoch advances are reflected in later TIDs.
    advance_epochs(&db, &[&w], 3);
    let mut txn = w.begin();
    txn.write(t, b"late", b"v").unwrap();
    let tid = txn.commit().unwrap();
    assert!(tid.epoch() >= 4);
}

#[test]
fn global_tid_configuration_commits_correctly() {
    let db = Database::open(SiloConfig::for_testing().with_global_tid());
    let t = db.create_table("t").unwrap();
    let mut w1 = db.register_worker();
    let mut w2 = db.register_worker();
    for i in 0..20u32 {
        let mut txn = if i % 2 == 0 { w1.begin() } else { w2.begin() };
        txn.write(t, format!("k{}", i).as_bytes(), b"v").unwrap();
        txn.commit().unwrap();
    }
    let mut txn = w1.begin();
    assert_eq!(txn.scan(t, b"", None, None).unwrap().len(), 20);
    txn.commit().unwrap();
}

#[test]
fn overwrite_stats_distinguish_inplace_from_new_versions() {
    // Same-length overwrites within one snapshot interval stay in place.
    let db = test_db();
    let t = db.create_table("t").unwrap();
    let mut w = db.register_worker();
    let mut txn = w.begin();
    txn.write(t, b"k", b"12345678").unwrap();
    txn.commit().unwrap();
    for _ in 0..5 {
        let mut txn = w.begin();
        txn.write(t, b"k", b"87654321").unwrap();
        txn.commit().unwrap();
    }
    assert!(w.stats().inplace_overwrites >= 5);

    // With overwrites disabled every update allocates a new version.
    let db2 = Database::open(SiloConfig {
        overwrite_in_place: false,
        ..SiloConfig::for_testing()
    });
    let t2 = db2.create_table("t").unwrap();
    let mut w2 = db2.register_worker();
    let mut txn = w2.begin();
    txn.write(t2, b"k", b"12345678").unwrap();
    txn.commit().unwrap();
    for _ in 0..5 {
        let mut txn = w2.begin();
        txn.write(t2, b"k", b"87654321").unwrap();
        txn.commit().unwrap();
    }
    assert_eq!(w2.stats().new_versions, 5);
}

#[test]
fn snapshot_transactions_read_the_past_and_never_abort() {
    let db = test_db();
    let t = db.create_table("t").unwrap();
    let mut w = db.register_worker();

    let mut txn = w.begin();
    txn.write(t, b"row", b"old-value").unwrap();
    txn.commit().unwrap();

    // Advance far enough that the committed value is covered by a snapshot
    // epoch (k = 5 in the test config).
    advance_epochs(&db, &[&w], 12);

    // Overwrite the row in the present.
    let mut txn = w.begin();
    txn.write(t, b"row", b"new-value").unwrap();
    txn.commit().unwrap();

    // A snapshot transaction still sees the old value; a regular transaction
    // sees the new one.
    let mut snap = w.begin_snapshot();
    assert!(snap.snapshot_epoch() >= 1);
    assert_eq!(snap.read(t, b"row"), Some(b"old-value".to_vec()));
    snap.finish();

    let mut txn = w.begin();
    assert_eq!(txn.read(t, b"row").unwrap(), Some(b"new-value".to_vec()));
    txn.commit().unwrap();
    assert_eq!(w.stats().snapshot_commits, 1);
}

#[test]
fn snapshot_scan_ignores_keys_inserted_after_snapshot() {
    let db = test_db();
    let t = db.create_table("t").unwrap();
    let mut w = db.register_worker();

    let mut txn = w.begin();
    for i in 0..5u32 {
        txn.write(t, format!("old{}", i).as_bytes(), b"v").unwrap();
    }
    txn.commit().unwrap();

    advance_epochs(&db, &[&w], 12);

    let mut txn = w.begin();
    for i in 0..5u32 {
        txn.write(t, format!("new{}", i).as_bytes(), b"v").unwrap();
    }
    txn.commit().unwrap();

    let mut snap = w.begin_snapshot();
    let rows = snap.scan(t, b"", None, None);
    assert_eq!(rows.len(), 5, "snapshot must not see the new keys");
    assert!(rows.iter().all(|(k, _)| k.starts_with(b"old")));
    drop(snap);

    let mut txn = w.begin();
    assert_eq!(txn.scan(t, b"", None, None).unwrap().len(), 10);
    txn.commit().unwrap();
}

#[test]
fn snapshot_sees_deleted_rows_that_existed_at_snapshot_time() {
    let db = test_db();
    let t = db.create_table("t").unwrap();
    let mut w = db.register_worker();

    let mut txn = w.begin();
    txn.write(t, b"doomed", b"still-here").unwrap();
    txn.commit().unwrap();

    advance_epochs(&db, &[&w], 12);

    let mut txn = w.begin();
    assert!(txn.delete(t, b"doomed").unwrap());
    txn.commit().unwrap();

    let mut snap = w.begin_snapshot();
    assert_eq!(snap.read(t, b"doomed"), Some(b"still-here".to_vec()));
    drop(snap);

    let mut txn = w.begin();
    assert_eq!(txn.read(t, b"doomed").unwrap(), None);
    txn.commit().unwrap();
}

#[test]
fn garbage_collection_unhooks_deleted_keys() {
    let db = test_db();
    let t = db.create_table("t").unwrap();
    let mut w = db.register_worker();

    let mut txn = w.begin();
    for i in 0..20u32 {
        txn.write(t, format!("k{:02}", i).as_bytes(), b"v").unwrap();
    }
    txn.commit().unwrap();

    let mut txn = w.begin();
    for i in 0..20u32 {
        assert!(txn.delete(t, format!("k{:02}", i).as_bytes()).unwrap());
    }
    txn.commit().unwrap();

    let table_len_before = db.table(t).approximate_len();
    assert_eq!(table_len_before, 20, "absent records stay until GC");

    // Let both the snapshot and tree reclamation epochs move past the delete.
    for _ in 0..40 {
        advance_epochs(&db, &[&w], 1);
        // Keep the worker's epochs current so reclamation epochs advance.
        let txn = w.begin();
        txn.commit().unwrap();
        w.collect_garbage();
    }
    assert!(
        db.table(t).approximate_len() < 20,
        "GC should have unhooked deleted keys (len = {})",
        db.table(t).approximate_len()
    );
    assert!(w.stats().records_reclaimed > 0);
}

#[test]
fn no_gc_configuration_leaves_absent_records_in_place() {
    let db = Database::open(SiloConfig::for_testing().without_gc());
    let t = db.create_table("t").unwrap();
    let mut w = db.register_worker();
    let mut txn = w.begin();
    txn.write(t, b"k", b"v").unwrap();
    txn.commit().unwrap();
    let mut txn = w.begin();
    txn.delete(t, b"k").unwrap();
    txn.commit().unwrap();
    for _ in 0..40 {
        advance_epochs(&db, &[&w], 1);
        w.collect_garbage();
    }
    assert_eq!(db.table(t).approximate_len(), 1);
    assert_eq!(w.pending_garbage(), 0);
}

#[test]
fn commit_hook_receives_writes() {
    use std::sync::Mutex;
    #[derive(Default)]
    struct Capture {
        log: Mutex<Vec<(usize, Tid, Vec<(TableId, Vec<u8>, Option<Vec<u8>>)>)>>,
    }
    impl CommitHook for Capture {
        fn on_commit(&self, worker: usize, tid: Tid, writes: &dyn CommitWrites) {
            let mut owned = Vec::with_capacity(writes.count());
            writes.for_each(&mut |w| {
                owned.push((w.table, w.key.to_vec(), w.value.map(|v| v.to_vec())));
            });
            self.log.lock().unwrap().push((worker, tid, owned));
        }
    }

    let db = test_db();
    let t = db.create_table("t").unwrap();
    let capture = Arc::new(Capture::default());
    db.set_commit_hook(capture.clone() as Arc<dyn CommitHook>)
        .ok()
        .unwrap();
    let mut w = db.register_worker();

    let mut txn = w.begin();
    txn.write(t, b"a", b"1").unwrap();
    txn.write(t, b"b", b"2").unwrap();
    let tid = txn.commit().unwrap();

    let mut txn = w.begin();
    txn.delete(t, b"a").unwrap();
    txn.commit().unwrap();

    let log = capture.log.lock().unwrap();
    assert_eq!(log.len(), 2);
    assert_eq!(log[0].1, tid);
    assert_eq!(log[0].2.len(), 2);
    assert!(log[1].2[0].2.is_none(), "delete logged with value = None");
}

#[test]
fn read_only_transactions_do_not_write_shared_memory() {
    // A read-only transaction's commit must not change any record TID word.
    let db = test_db();
    let t = db.create_table("t").unwrap();
    let mut w = db.register_worker();
    let mut txn = w.begin();
    txn.write(t, b"k", b"v").unwrap();
    txn.commit().unwrap();

    let before = {
        let (val, _, _) = db.table(t).tree().get_tracked(b"k");
        let rec = val.unwrap() as *const record::Record;
        // SAFETY: record is live (no GC ran).
        unsafe { (*rec).tid().load().raw() }
    };
    for _ in 0..5 {
        let mut txn = w.begin();
        assert!(txn.read(t, b"k").unwrap().is_some());
        txn.commit().unwrap();
    }
    let after = {
        let (val, _, _) = db.table(t).tree().get_tracked(b"k");
        let rec = val.unwrap() as *const record::Record;
        // SAFETY: record is live.
        unsafe { (*rec).tid().load().raw() }
    };
    assert_eq!(before, after);
}

// ---------------------------------------------------------------------------
// Multi-threaded serializability checks
// ---------------------------------------------------------------------------

#[test]
fn concurrent_bank_transfers_preserve_total_balance() {
    let db = Database::open(SiloConfig {
        spawn_epoch_advancer: true,
        ..SiloConfig::for_testing()
    });
    let t = db.create_table("accounts").unwrap();
    let accounts = 16u32;
    let initial = 1000u64;
    {
        let mut w = db.register_worker();
        let mut txn = w.begin();
        for a in 0..accounts {
            txn.write(
                t,
                format!("acct{:02}", a).as_bytes(),
                &initial.to_be_bytes(),
            )
            .unwrap();
        }
        txn.commit().unwrap();
    }

    let threads = 4;
    let transfers_per_thread = 500;
    let mut handles = Vec::new();
    for tid in 0..threads {
        let db = Arc::clone(&db);
        handles.push(std::thread::spawn(move || {
            let mut w = db.register_worker();
            let mut committed = 0u64;
            let mut state = 0x243F6A8885A308D3u64 ^ (tid as u64);
            for _ in 0..transfers_per_thread {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let from = (state >> 33) as u32 % accounts;
                let to = (state >> 13) as u32 % accounts;
                if from == to {
                    continue;
                }
                let mut txn = w.begin();
                let run = (|| -> Result<(), Abort> {
                    let fk = format!("acct{:02}", from);
                    let tk = format!("acct{:02}", to);
                    let fv = txn.read(t, fk.as_bytes())?.expect("account exists");
                    let tv = txn.read(t, tk.as_bytes())?.expect("account exists");
                    let fb = u64::from_be_bytes(fv.try_into().unwrap());
                    let tb = u64::from_be_bytes(tv.try_into().unwrap());
                    if fb == 0 {
                        return Ok(());
                    }
                    txn.write(t, fk.as_bytes(), &(fb - 1).to_be_bytes())?;
                    txn.write(t, tk.as_bytes(), &(tb + 1).to_be_bytes())?;
                    Ok(())
                })();
                match run {
                    Ok(()) => {
                        if txn.commit().is_ok() {
                            committed += 1;
                        }
                    }
                    Err(_) => txn.abort(),
                }
            }
            committed
        }));
    }
    let total_committed: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total_committed > 0);

    let mut w = db.register_worker();
    let mut txn = w.begin();
    let mut sum = 0u64;
    for a in 0..accounts {
        let v = txn
            .read(t, format!("acct{:02}", a).as_bytes())
            .unwrap()
            .unwrap();
        sum += u64::from_be_bytes(v.try_into().unwrap());
    }
    txn.commit().unwrap();
    assert_eq!(
        sum,
        accounts as u64 * initial,
        "serializability violated: money created or destroyed"
    );
    db.stop_epoch_advancer();
}

#[test]
fn concurrent_counter_increments_are_not_lost() {
    let db = Database::open(SiloConfig {
        spawn_epoch_advancer: true,
        ..SiloConfig::for_testing()
    });
    let t = db.create_table("counters").unwrap();
    {
        let mut w = db.register_worker();
        let mut txn = w.begin();
        txn.write(t, b"c", &0u64.to_be_bytes()).unwrap();
        txn.commit().unwrap();
    }
    let threads = 4;
    let mut handles = Vec::new();
    for _ in 0..threads {
        let db = Arc::clone(&db);
        handles.push(std::thread::spawn(move || {
            let mut w = db.register_worker();
            let mut committed = 0u64;
            for _ in 0..300 {
                let mut txn = w.begin();
                let v = txn.read(t, b"c").unwrap().unwrap();
                let n = u64::from_be_bytes(v.try_into().unwrap());
                txn.write(t, b"c", &(n + 1).to_be_bytes()).unwrap();
                if txn.commit().is_ok() {
                    committed += 1;
                }
            }
            committed
        }));
    }
    let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let mut w = db.register_worker();
    let mut txn = w.begin();
    let v = txn.read(t, b"c").unwrap().unwrap();
    txn.commit().unwrap();
    assert_eq!(u64::from_be_bytes(v.try_into().unwrap()), total);
    db.stop_epoch_advancer();
}

#[test]
fn concurrent_inserts_of_same_key_commit_exactly_once() {
    let db = Database::open(SiloConfig {
        spawn_epoch_advancer: true,
        ..SiloConfig::for_testing()
    });
    let t = db.create_table("t").unwrap();
    let barrier = Arc::new(std::sync::Barrier::new(4));
    let mut handles = Vec::new();
    for tid in 0..4usize {
        let db = Arc::clone(&db);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let mut w = db.register_worker();
            barrier.wait();
            let mut wins = 0;
            for k in 0..100u32 {
                let mut txn = w.begin();
                let key = format!("contended{}", k);
                match txn.insert(t, key.as_bytes(), format!("winner{}", tid).as_bytes()) {
                    Ok(()) => {
                        if txn.commit().is_ok() {
                            wins += 1;
                        }
                    }
                    Err(_) => txn.abort(),
                }
            }
            wins
        }));
    }
    let total_wins: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(
        total_wins, 100,
        "each key committed by exactly one inserter"
    );
    db.stop_epoch_advancer();
}

#[test]
fn snapshot_reads_are_consistent_under_concurrent_updates() {
    // Writers keep two keys equal; snapshot readers must never observe them
    // differing (a regular read could, before commit-time validation).
    let db = Database::open(SiloConfig {
        spawn_epoch_advancer: true,
        ..SiloConfig::for_testing()
    });
    let t = db.create_table("t").unwrap();
    {
        let mut w = db.register_worker();
        let mut txn = w.begin();
        txn.write(t, b"left", &0u64.to_be_bytes()).unwrap();
        txn.write(t, b"right", &0u64.to_be_bytes()).unwrap();
        txn.commit().unwrap();
    }
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut w = db.register_worker();
            let mut n = 0u64;
            while !stop.load(Ordering::Relaxed) {
                n += 1;
                let mut txn = w.begin();
                txn.write(t, b"left", &n.to_be_bytes()).unwrap();
                txn.write(t, b"right", &n.to_be_bytes()).unwrap();
                let _ = txn.commit();
            }
        })
    };
    let mut w = db.register_worker();
    for _ in 0..200 {
        let mut snap = w.begin_snapshot();
        let l = snap.read(t, b"left");
        let r = snap.read(t, b"right");
        assert_eq!(l, r, "snapshot saw a half-applied transaction");
        drop(snap);
    }
    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();
    db.stop_epoch_advancer();
}

/// The paper's §3 design rule, pinned end-to-end: a warmed, committed
/// read-only transaction — epoch refresh, index point reads (hits and
/// misses), a range scan, read/node-set validation, TID generation — writes
/// **nothing** to memory shared between threads. Every shared-write site in
/// the workspace calls `shared_write_audit::note()`; per-worker
/// cache-padded epoch slots and sharded reader-retry cells are the two
/// sanctioned (unaudited) patterns. The counter is live in debug builds
/// only; in release this degenerates to a smoke test.
#[test]
fn read_only_transactions_write_nothing_shared() {
    use silo_epoch::shared_write_audit;

    let db = test_db();
    let t = db.create_table("t").unwrap();
    let mut w = db.register_worker();

    // Warm: populate enough rows for splits, plus long keys for trie
    // layers, and run one full read-only transaction so worker-local caches
    // (table cache, thread-locals) are primed.
    let mut txn = w.begin();
    for i in 0..500u64 {
        let k = format!("warm{i:08}");
        txn.write(t, k.as_bytes(), b"v").unwrap();
    }
    for i in 0..32u64 {
        let k = format!("longprefix-shared-{i:04}-with-a-tail");
        txn.write(t, k.as_bytes(), b"v").unwrap();
    }
    txn.commit().unwrap();
    let mut txn = w.begin();
    assert!(txn.read(t, b"warm00000001").unwrap().is_some());
    let _ = txn
        .scan(t, b"warm00000100", Some(b"warm00000200"), None)
        .unwrap();
    txn.commit().unwrap();

    let _ = shared_write_audit::take();

    // Measured: a read-only transaction of point reads (present and absent,
    // short and long keys) and a range scan, committed.
    let mut txn = w.begin();
    for i in (0..500u64).step_by(13) {
        let k = format!("warm{i:08}");
        assert_eq!(
            txn.read(t, k.as_bytes()).unwrap().as_deref(),
            Some(&b"v"[..])
        );
    }
    assert_eq!(txn.read(t, b"warm-absent-key").unwrap(), None);
    assert_eq!(
        txn.read(t, b"longprefix-shared-0007-with-a-tail")
            .unwrap()
            .as_deref(),
        Some(&b"v"[..])
    );
    assert_eq!(
        txn.read(t, b"longprefix-shared-0007-with-a-MISS").unwrap(),
        None
    );
    let r = txn
        .scan(t, b"warm00000100", Some(b"warm00000200"), None)
        .unwrap();
    assert_eq!(r.len(), 100);
    txn.commit().unwrap();

    assert_eq!(
        shared_write_audit::take(),
        0,
        "a read-only transaction must not write to shared memory (paper §3)"
    );

    // A snapshot transaction is read-only by construction: same rule. (The
    // snapshot epoch may predate the warm-up commit, so the read's outcome
    // is not asserted — only its write behaviour.)
    let mut snap = w.begin_snapshot();
    let _ = snap.read(t, b"warm00000001");
    drop(snap);
    assert_eq!(
        shared_write_audit::take(),
        0,
        "snapshot transactions must not write to shared memory"
    );
}

mod context_reuse {
    //! Property test for the reusable `TxnContext`: no transaction state
    //! (reads, writes, node-set, placeholders, arena contents) may leak from
    //! one transaction into the next on the same worker, across any
    //! interleaving of commits, aborts, drops and poisoned transactions.

    use super::*;
    use proptest::collection::vec;
    use proptest::prelude::*;
    use std::collections::HashMap;

    /// One operation inside a transaction. Keys are drawn from a small space
    /// so transactions collide with earlier state often.
    #[derive(Debug, Clone, Copy)]
    enum Op {
        Read(u8),
        Write(u8, u8),
        Insert(u8, u8),
        Delete(u8),
        Scan,
        Exists(u8),
    }

    /// How the transaction ends.
    #[derive(Debug, Clone, Copy)]
    enum End {
        Commit,
        Abort,
        Drop,
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u8..16).prop_map(Op::Read),
            (0u8..16, any::<u8>()).prop_map(|(k, v)| Op::Write(k, v)),
            (0u8..16, any::<u8>()).prop_map(|(k, v)| Op::Insert(k, v)),
            (0u8..16).prop_map(Op::Delete),
            (0u8..16).prop_map(|_| Op::Scan),
            (0u8..16).prop_map(Op::Exists),
        ]
    }

    fn arb_end() -> impl Strategy<Value = End> {
        prop_oneof![
            (0u8..1).prop_map(|_| End::Commit),
            (0u8..1).prop_map(|_| End::Abort),
            (0u8..1).prop_map(|_| End::Drop),
        ]
    }

    fn key(k: u8) -> [u8; 3] {
        [b'k', k / 10 + b'0', k % 10 + b'0']
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn no_state_leaks_between_transactions(
            txns in vec((vec(arb_op(), 0..12), arb_end()), 1..24),
        ) {
            let db = test_db();
            let t = db.create_table("t").unwrap();
            let mut w = db.register_worker();
            // The reference model of committed state.
            let mut model: HashMap<u8, u8> = HashMap::new();

            for (ops, end) in txns {
                // A fresh transaction must start with *empty* sets no matter
                // how its predecessor ended.
                let mut txn = w.begin();
                prop_assert_eq!(txn.read_set_len(), 0, "read-set leaked");
                prop_assert_eq!(txn.write_set_len(), 0, "write-set leaked");
                prop_assert_eq!(txn.node_set_len(), 0, "node-set leaked");
                prop_assert_eq!(txn.placeholder_len(), 0, "placeholders leaked");

                // Shadow model of this transaction's own effects, applied to
                // the committed model only on a successful commit.
                let mut pending = model.clone();
                let mut poisoned = false;
                for op in ops {
                    if poisoned {
                        break;
                    }
                    match op {
                        Op::Read(k) => {
                            let got = match txn.read(t, &key(k)) {
                                Ok(v) => v,
                                Err(_) => { poisoned = true; continue; }
                            };
                            prop_assert_eq!(
                                got, pending.get(&k).map(|v| vec![*v]),
                                "read of k{} disagrees with the model", k
                            );
                        }
                        Op::Exists(k) => {
                            let got = match txn.exists(t, &key(k)) {
                                Ok(v) => v,
                                Err(_) => { poisoned = true; continue; }
                            };
                            prop_assert_eq!(got, pending.contains_key(&k));
                        }
                        Op::Write(k, v) => {
                            match txn.write(t, &key(k), &[v]) {
                                Ok(()) => { pending.insert(k, v); }
                                Err(_) => poisoned = true,
                            }
                        }
                        Op::Insert(k, v) => {
                            // Inserting a present key poisons the txn — that
                            // is the interleaved "poisoned" case of the
                            // property.
                            match txn.insert(t, &key(k), &[v]) {
                                Ok(()) => { pending.insert(k, v); }
                                Err(_) => poisoned = true,
                            }
                        }
                        Op::Delete(k) => {
                            match txn.delete(t, &key(k)) {
                                Ok(existed) => {
                                    prop_assert_eq!(existed, pending.remove(&k).is_some());
                                }
                                Err(_) => poisoned = true,
                            }
                        }
                        Op::Scan => {
                            let got = match txn.scan(t, b"k", None, None) {
                                Ok(v) => v,
                                Err(_) => { poisoned = true; continue; }
                            };
                            // The scan overlays this txn's own updates of
                            // committed keys but not its fresh inserts, so
                            // compare against the committed key space.
                            for (k_bytes, v_bytes) in got {
                                let k = (k_bytes[1] - b'0') * 10 + (k_bytes[2] - b'0');
                                prop_assert!(
                                    pending.contains_key(&k) || model.contains_key(&k),
                                    "scan surfaced k{} which neither model holds", k
                                );
                                prop_assert_eq!(v_bytes.len(), 1);
                            }
                        }
                    }
                }

                match end {
                    End::Commit => {
                        if txn.commit().is_ok() && !poisoned {
                            model = pending;
                        }
                    }
                    End::Abort => txn.abort(),
                    End::Drop => drop(txn),
                }

                // Whatever happened, the committed state must now match the
                // model exactly: nothing from an aborted/poisoned/dropped
                // transaction may be visible, everything committed must be.
                let mut check = w.begin();
                for k in 0u8..16 {
                    let got = check.read(t, &key(k)).unwrap();
                    prop_assert_eq!(
                        got, model.get(&k).map(|v| vec![*v]),
                        "post-txn state of k{} diverged from the model", k
                    );
                }
                check.commit().unwrap();

                // Interleave epoch advancement + GC so placeholder cleanup
                // and record recycling run mid-sequence too.
                advance_epochs(&db, &[&w], 1);
                w.collect_garbage();
            }
        }
    }
}

mod history_recording {
    //! End-to-end tests of the history recorder and checker: the engine's
    //! own executions, recorded black-box and verified serializable.

    use super::*;
    use silo_check::{check_serializability, HistoryRecorder};

    #[test]
    fn recorded_history_roundtrips_through_engine() {
        let db = test_db();
        let recorder = HistoryRecorder::new();
        db.set_history_recorder(Arc::clone(&recorder)).unwrap();
        let t = db.create_table("t").unwrap();
        {
            let mut w = db.register_worker();
            let mut txn = w.begin();
            txn.write(t, b"a", b"1").unwrap();
            txn.insert(t, b"b", b"2").unwrap();
            txn.commit().unwrap();

            let mut txn = w.begin();
            assert!(txn.read(t, b"a").unwrap().is_some());
            assert!(txn.read(t, b"missing").unwrap().is_none());
            txn.delete(t, b"b").unwrap();
            txn.commit().unwrap();

            let mut txn = w.begin();
            let v = txn.read(t, b"a").unwrap().unwrap();
            txn.write(t, b"a", &[v[0] + 1]).unwrap();
            txn.abort();
        }
        let sessions = recorder.take_sessions();
        assert_eq!(sessions.len(), 1);
        let s = &sessions[0];
        assert_eq!(s.len(), 3);
        let t0 = s.txn(0);
        let t1 = s.txn(1);
        let t2 = s.txn(2);
        // Txn 0: two fresh writes, both absence checks observed version 0.
        assert!(t0.reads().all(|r| r.observed == 0));
        assert_eq!(t0.writes().count(), 2);
        // Txn 1 read the versions txn 0 installed, and a missing key as 0.
        let tid0 = t0.tid().unwrap().raw();
        let observed: Vec<u64> = t1.reads().map(|r| r.observed).collect();
        assert!(observed.contains(&tid0));
        assert!(observed.contains(&0));
        assert!(t1.writes().any(|w| w.delete));
        // Txn 2 aborted; its attempted write is recorded, but it has no TID.
        assert!(t2.tid().is_none());
        assert_eq!(t2.writes().count(), 1);

        let report = check_serializability(&sessions).expect("serializable");
        assert_eq!(report.committed, 2);
        assert_eq!(report.aborted, 1);
        assert_eq!(report.external_versions, 0);
    }

    #[test]
    fn recorded_concurrent_history_is_serializable() {
        // GC stays off: after a deleted key is unhooked from the index, a
        // reader records "initial version" for what is really a later state,
        // which the checker would (rightly, per the recording) flag.
        let db = Database::open(SiloConfig {
            spawn_epoch_advancer: true,
            ..SiloConfig::for_testing().without_gc()
        });
        let recorder = HistoryRecorder::new();
        db.set_history_recorder(Arc::clone(&recorder)).unwrap();
        let t = db.create_table("t").unwrap();
        {
            let mut w = db.register_worker();
            let mut txn = w.begin();
            for k in 0..4u32 {
                txn.write(t, &k.to_be_bytes(), &0u64.to_be_bytes()).unwrap();
            }
            txn.commit().unwrap();
        }
        let mut handles = Vec::new();
        for seed in 0..3u64 {
            let db = Arc::clone(&db);
            handles.push(std::thread::spawn(move || {
                let mut w = db.register_worker();
                let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) + 1;
                for i in 0..200u64 {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let k = ((state >> 33) as u32 % 4).to_be_bytes();
                    let mut txn = w.begin();
                    let result = (|| -> Result<(), Abort> {
                        let v = txn.read(t, &k)?.unwrap_or_default();
                        let n = u64::from_be_bytes(v.try_into().unwrap_or([0; 8]));
                        txn.write(t, &k, &(n + i).to_be_bytes())?;
                        Ok(())
                    })();
                    match result {
                        Ok(()) => {
                            let _ = txn.commit();
                        }
                        Err(_) => txn.abort(),
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        db.stop_epoch_advancer();
        let sessions = recorder.take_sessions();
        assert_eq!(sessions.len(), 4, "setup worker plus three threads");
        let report = check_serializability(&sessions).expect("serializable");
        assert!(report.committed > 0);
        assert_eq!(report.external_versions, 0);
    }

    /// An installed-but-disabled recorder adds **zero shared-memory writes**
    /// to the transaction path — and even an enabled one only writes
    /// worker-local buffers during transactions (the shared recorder is
    /// touched at flush). Reuses the `shared_write_audit` hook that pins the
    /// paper's §3 rule for read-only transactions.
    #[test]
    fn recorder_adds_no_shared_writes_to_transactions() {
        use silo_epoch::shared_write_audit;

        let db = test_db();
        let recorder = HistoryRecorder::new_disabled();
        db.set_history_recorder(Arc::clone(&recorder)).unwrap();
        let t = db.create_table("t").unwrap();
        let mut w = db.register_worker();

        // Warm: data in place, one read-only txn to prime caches.
        let mut txn = w.begin();
        for i in 0..64u64 {
            txn.write(t, &i.to_be_bytes(), b"v").unwrap();
        }
        txn.commit().unwrap();
        let mut txn = w.begin();
        assert!(txn.read(t, &1u64.to_be_bytes()).unwrap().is_some());
        txn.commit().unwrap();

        let _ = shared_write_audit::take();
        let mut txn = w.begin();
        for i in (0..64u64).step_by(7) {
            assert!(txn.read(t, &i.to_be_bytes()).unwrap().is_some());
        }
        assert!(txn.read(t, b"absent").unwrap().is_none());
        txn.commit().unwrap();
        assert_eq!(
            shared_write_audit::take(),
            0,
            "a disabled recorder must not add shared-memory writes"
        );

        // Enabled: recording goes to worker-local buffers only, so a
        // read-only transaction still performs no shared writes.
        recorder.set_enabled(true);
        let mut txn = w.begin();
        assert!(txn.read(t, &2u64.to_be_bytes()).unwrap().is_some());
        txn.commit().unwrap();
        assert_eq!(
            shared_write_audit::take(),
            0,
            "recording buffers are worker-local"
        );

        recorder.set_enabled(false);
        drop(w);
        let sessions = recorder.take_sessions();
        assert_eq!(sessions.len(), 1, "only the enabled transaction recorded");
        assert_eq!(sessions[0].len(), 1);
    }

    /// Workers registered before any recorder is installed never record.
    #[test]
    fn recorder_only_binds_workers_registered_after_install() {
        let db = test_db();
        let t = db.create_table("t").unwrap();
        let mut early = db.register_worker();
        let recorder = HistoryRecorder::new();
        db.set_history_recorder(Arc::clone(&recorder)).unwrap();
        let mut late = db.register_worker();

        let mut txn = early.begin();
        txn.write(t, b"e", b"1").unwrap();
        txn.commit().unwrap();
        let mut txn = late.begin();
        txn.write(t, b"l", b"1").unwrap();
        txn.commit().unwrap();
        drop(early);
        drop(late);

        let sessions = recorder.take_sessions();
        assert_eq!(sessions.len(), 1);
        // Worker ids are sequential: 0 = early, 1 = late.
        assert_eq!(sessions[0].session(), 1);
    }
}
