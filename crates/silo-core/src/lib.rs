//! # silo-core — the Silo storage engine
//!
//! A from-scratch Rust implementation of **Silo** (Tu, Zheng, Kohler, Liskov,
//! Madden: *Speedy Transactions in Multicore In-Memory Databases*, SOSP
//! 2013): a serializable in-memory database engine whose commit protocol is
//! based on optimistic concurrency control, performs **no shared-memory
//! writes for records that were only read**, assigns transaction IDs without
//! any centralized counter, and uses periodically-updated **epochs** for
//! serializable recovery, garbage collection and read-only snapshots.
//!
//! ## Quick start
//!
//! ```
//! use silo_core::{Database, SiloConfig};
//!
//! let db = Database::open(SiloConfig::for_testing());
//! let accounts = db.create_table("accounts").unwrap();
//! let mut worker = db.register_worker();
//!
//! // A read/write transaction.
//! let mut txn = worker.begin();
//! txn.write(accounts, b"alice", b"100").unwrap();
//! txn.write(accounts, b"bob", b"200").unwrap();
//! let tid = txn.commit().unwrap();
//! assert!(tid.epoch() >= 1);
//!
//! // Reads see committed data.
//! let mut txn = worker.begin();
//! assert_eq!(txn.read(accounts, b"alice").unwrap(), Some(b"100".to_vec()));
//! assert_eq!(txn.read(accounts, b"carol").unwrap(), None);
//! txn.commit().unwrap();
//! ```
//!
//! ## Crate layout
//!
//! | Module | Paper section | Contents |
//! |---|---|---|
//! | [`config`] | §5.2, §5.7 | [`SiloConfig`] and the factor-analysis knobs |
//! | [`record`] | §4.3, §4.5 | record layout, read/write protocols, version chains |
//! | [`database`] | §3, §4.7 | tables, catalog, commit hook for durability |
//! | [`worker`] | §4.1, §4.8 | per-thread worker state, epochs, GC, allocation pool |
//! | [`txn`] | §4.4–§4.7 | the three-phase OCC commit protocol |
//! | [`snapshot`] | §4.9 | never-aborting read-only snapshot transactions |
//!
//! The index substrate lives in the `silo-index` crate, the epoch subsystem
//! in `silo-epoch`, TIDs in `silo-tid`, and durability in `silo-log`.

#![warn(missing_docs)]
// Raw key/value byte tuples are part of this crate's vocabulary; aliasing
// them away would obscure more than it clarifies.
#![allow(clippy::type_complexity)]

mod arena;
pub mod bulk;
pub mod config;
pub mod database;
pub mod error;
mod gc;
pub mod record;
pub mod session;
pub mod snapshot;
pub mod stats;
pub mod txn;
pub mod worker;

pub use bulk::{bulk_apply, sweep_absent, BulkOutcome};
pub use config::SiloConfig;
pub use database::{
    CommitHook, CommitWrite, CommitWrites, Database, DurabilityHealth, Table, TableId,
};
pub use error::{Abort, AbortReason, CatalogError};
pub use silo_check::{check_serializability, CheckReport, HistoryRecorder, SessionHistory};
pub use silo_epoch::{EpochConfig, EpochManager};
pub use silo_index::IndexStats;
pub use silo_tid::{Tid, TidWord};
pub use session::Session;
pub use snapshot::{SnapshotTxn, WalkPacer};
pub use stats::{AbortBreakdown, WorkerStats};
pub use txn::Txn;
pub use worker::Worker;

#[cfg(test)]
mod tests;
