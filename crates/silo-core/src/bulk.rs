//! Bulk-load paths for recovery (paper §4.10).
//!
//! Recovery rebuilds a database from a checkpoint plus a log tail. Both
//! sources carry the commit TID of every record version, and both are applied
//! *outside* the commit protocol: there are no concurrent transactions during
//! recovery, so records are installed directly into the index with their
//! original TIDs. Conflicts between sources — a checkpointed record also
//! present in the (un-truncated) log, or the same key written by several
//! logged transactions replayed on different threads — are resolved by TID:
//! only the largest TID's value survives, exactly as the paper prescribes
//! ("log records for the same record must be applied in TID order").
//!
//! Concurrency contract: many threads may call [`bulk_apply`] on the *same*
//! table concurrently as long as no two of them ever pass the same key (the
//! recovery pipeline shards log records by key hash to guarantee this), and
//! no transactional workers run until recovery completes.

use silo_tid::{Tid, TidWord};

use crate::database::Table;
use crate::record::Record;

/// What [`bulk_apply`] did with the supplied write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BulkOutcome {
    /// The key was absent; a new record was installed.
    Inserted,
    /// The key existed with a smaller TID; its value was replaced.
    Updated,
    /// The key existed with a smaller TID; it was marked absent (deleted).
    Deleted,
    /// The key already carried an equal or larger TID; nothing was changed.
    Stale,
    /// A delete for a key that had no record yet; an absent *tombstone* was
    /// installed so that writes with smaller TIDs arriving later (replay
    /// order is not TID order) cannot resurrect the key.
    Tombstoned,
}

/// Applies one recovered write (`value = None` for a delete) to `table`,
/// resolving conflicts by TID: the write only takes effect if `tid` is
/// strictly larger than the TID currently stored for the key.
///
/// # Safety
///
/// Recovery-mode exclusivity: no transactional access to the database may be
/// in flight, and no other thread may concurrently `bulk_apply` the *same*
/// `(table, key)` (distinct keys are fine — the index handles concurrent
/// structural changes). A superseded record that no longer fits its new value
/// is freed immediately, which is only sound under this contract.
pub unsafe fn bulk_apply(table: &Table, key: &[u8], tid: Tid, value: Option<&[u8]>) -> BulkOutcome {
    let tree = table.tree();
    loop {
        match tree.get(key) {
            None => {
                // A delete of an unseen key still installs a record — an
                // absent tombstone carrying the delete's TID — because a
                // *smaller*-TID insert of the same key may still be in
                // flight on this shard (streams interleave epochs, so
                // arrival order is not TID order) and must lose.
                let (payload, absent) = match value {
                    Some(value) => (value, false),
                    None => (&[][..], true),
                };
                let word = TidWord::new(tid, false, true, absent);
                let record = Record::allocate(payload, word, 0);
                match tree.insert_if_absent(key, record as u64) {
                    silo_index::InsertOutcome::Inserted { .. } => {
                        return if absent {
                            BulkOutcome::Tombstoned
                        } else {
                            BulkOutcome::Inserted
                        }
                    }
                    silo_index::InsertOutcome::Exists { .. } => {
                        // Raced with another shard inserting a *different*
                        // key that split our leaf — impossible for the same
                        // key under the exclusivity contract, so the retry
                        // can only happen when `get` raced a concurrent
                        // structural change. Free the unpublished record and
                        // go through the existing-record path.
                        // SAFETY: never published; exclusively ours.
                        unsafe { Record::free(record) };
                        continue;
                    }
                }
            }
            Some(ptr) => {
                let record = ptr as *mut Record;
                // SAFETY: the key maps to this record and the exclusivity
                // contract means no one else can free it.
                let rec = unsafe { &*record };
                let current = rec.tid().load();
                if current.tid() >= tid {
                    return BulkOutcome::Stale;
                }
                match value {
                    Some(value) if rec.fits(value) => {
                        rec.tid().lock();
                        // SAFETY: lock held, fits checked.
                        unsafe { rec.overwrite(value) };
                        rec.tid()
                            .store_and_unlock(TidWord::new(tid, false, true, false));
                        return BulkOutcome::Updated;
                    }
                    Some(value) => {
                        // The new value outgrew the record: install a fresh
                        // record and free the old one (no snapshot reader can
                        // need it during recovery).
                        let word = TidWord::new(tid, false, true, false);
                        let fresh = Record::allocate(value, word, 0);
                        let updated = tree.update_value(key, fresh as u64);
                        debug_assert!(updated, "recovered key vanished from the index");
                        // SAFETY: exclusivity contract — nothing else holds a
                        // pointer to the superseded record.
                        unsafe { Record::free(record) };
                        return BulkOutcome::Updated;
                    }
                    None => {
                        // Delete: mark the record absent, as the engine's own
                        // delete path does. No `Garbage::Unhook` is registered
                        // (recovery runs without the worker/GC machinery); the
                        // post-replay [`sweep_absent`] pass unhooks and frees
                        // whatever stays absent once all streams are applied.
                        rec.tid().lock();
                        rec.tid()
                            .store_and_unlock(TidWord::new(tid, false, true, true));
                        return BulkOutcome::Deleted;
                    }
                }
            }
        }
    }
}

/// Unhooks every *absent* record still reachable from `table`'s index — the
/// tombstones recovery installs for deletes of unseen keys, plus present
/// keys whose recovered final action was a delete — and frees the records.
/// Returns the number of keys reclaimed.
///
/// During normal operation the garbage collector performs this cleanup
/// lazily (a touching write revives or supersedes the record); after
/// recovery there are no workers yet, so without this sweep a tombstone
/// would stay hooked until some future write happens to touch its key.
/// The index walk is chunked so memory stays bounded on large tables.
///
/// # Safety
///
/// Recovery-mode exclusivity, as for [`bulk_apply`]: no transactional or
/// concurrent bulk access to `table` may be in flight. Records and removed
/// index entries are freed immediately, which is only sound under this
/// contract.
pub unsafe fn sweep_absent(table: &Table) -> u64 {
    const CHUNK: usize = 1024;
    let tree = table.tree();
    let mut reclaimed = 0u64;
    let mut start: Vec<u8> = Vec::new();
    loop {
        let result = tree.scan(&start, None, Some(CHUNK));
        let n = result.entries.len();
        for (key, value) in result.entries {
            let record = value as *mut Record;
            // SAFETY: exclusivity contract — the record is alive and no one
            // else can free it.
            let word = unsafe { (*record).tid().load() };
            if word.is_latest() && word.is_absent() {
                if let Some(removed) = tree.remove(&key) {
                    debug_assert_eq!(removed.value, value);
                    // Exclusive access: no concurrent reader can still hold
                    // the suffix or the record, so both free immediately.
                    drop(removed);
                    // SAFETY: unhooked above; exclusively ours.
                    unsafe { Record::free(record) };
                    reclaimed += 1;
                }
            }
            start = key;
        }
        if n < CHUNK {
            return reclaimed;
        }
        start.push(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SiloConfig;
    use crate::database::Database;

    #[test]
    fn sweep_absent_reclaims_tombstones_and_deleted_keys() {
        let db = Database::open(SiloConfig::for_testing());
        let t = db.create_table("t").unwrap();
        let table = db.table(t);
        // SAFETY: single-threaded test, no transactions in flight.
        unsafe {
            // A live key, a tombstone for an unseen key, and a key whose
            // final recovered action was a delete.
            bulk_apply(&table, b"alive", Tid::new(2, 1), Some(b"v"));
            bulk_apply(&table, b"ghost", Tid::new(3, 1), None);
            bulk_apply(&table, b"gone", Tid::new(2, 2), Some(b"v"));
            bulk_apply(&table, b"gone", Tid::new(3, 2), None);
            assert_eq!(table.tree().len(), 3, "absent records stay hooked");
            assert_eq!(sweep_absent(&table), 2);
        }
        assert_eq!(table.tree().len(), 1);
        let mut w = db.register_worker();
        let mut txn = w.begin();
        assert_eq!(txn.read(t, b"alive").unwrap(), Some(b"v".to_vec()));
        assert_eq!(txn.read(t, b"ghost").unwrap(), None);
        assert_eq!(txn.read(t, b"gone").unwrap(), None);
        // The swept keys are fully usable again.
        txn.insert(t, b"gone", b"back").unwrap();
        txn.commit().unwrap();
    }

    #[test]
    fn insert_update_delete_resolve_by_tid() {
        let db = Database::open(SiloConfig::for_testing());
        let t = db.create_table("t").unwrap();
        let table = db.table(t);

        // SAFETY: single-threaded test, no transactions in flight.
        unsafe {
            assert_eq!(
                bulk_apply(&table, b"k", Tid::new(2, 1), Some(b"v1")),
                BulkOutcome::Inserted
            );
            // Older TID loses.
            assert_eq!(
                bulk_apply(&table, b"k", Tid::new(1, 9), Some(b"old")),
                BulkOutcome::Stale
            );
            // Newer TID wins, both in place and with a re-allocation.
            assert_eq!(
                bulk_apply(&table, b"k", Tid::new(3, 0), Some(b"x")),
                BulkOutcome::Updated
            );
            assert_eq!(
                bulk_apply(&table, b"k", Tid::new(3, 1), Some(&vec![7u8; 512])),
                BulkOutcome::Updated
            );
            // Delete of an unseen key installs a tombstone that beats any
            // smaller-TID write arriving later; delete of a present key
            // marks it absent; a later re-insert revives it.
            assert_eq!(
                bulk_apply(&table, b"nope", Tid::new(9, 0), None),
                BulkOutcome::Tombstoned
            );
            assert_eq!(
                bulk_apply(&table, b"nope", Tid::new(8, 0), Some(b"resurrect")),
                BulkOutcome::Stale
            );
            assert_eq!(
                bulk_apply(&table, b"k", Tid::new(4, 0), None),
                BulkOutcome::Deleted
            );
            assert_eq!(
                bulk_apply(&table, b"k", Tid::new(5, 0), Some(b"back")),
                BulkOutcome::Updated
            );
        }

        let mut w = db.register_worker();
        let mut txn = w.begin();
        assert_eq!(txn.read(t, b"k").unwrap(), Some(b"back".to_vec()));
        assert_eq!(
            txn.read(t, b"nope").unwrap(),
            None,
            "tombstone must hide the key"
        );
        txn.commit().unwrap();
    }

    #[test]
    fn recovered_records_are_fully_transactional() {
        let db = Database::open(SiloConfig::for_testing());
        let t = db.create_table("t").unwrap();
        let table = db.table(t);
        for i in 0..100u32 {
            // SAFETY: single-threaded test, no transactions in flight.
            unsafe {
                bulk_apply(
                    &table,
                    &i.to_be_bytes(),
                    Tid::new(2, i as u64),
                    Some(format!("v{i}").as_bytes()),
                );
            }
        }
        let mut w = db.register_worker();
        let mut txn = w.begin();
        let all = txn.scan(t, b"", None, None).unwrap();
        assert_eq!(all.len(), 100);
        txn.write(t, &5u32.to_be_bytes(), b"rewritten").unwrap();
        txn.commit().unwrap();
        let mut txn = w.begin();
        assert_eq!(
            txn.read(t, &5u32.to_be_bytes()).unwrap(),
            Some(b"rewritten".to_vec())
        );
        txn.commit().unwrap();
    }
}
