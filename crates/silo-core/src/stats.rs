//! Per-worker execution statistics.

use crate::error::AbortReason;

/// Counters maintained by each worker. Not shared: the driver aggregates
/// per-worker statistics after a run, so updating them is free of
/// cross-thread communication (in keeping with Silo's no-shared-writes
/// philosophy).
#[derive(Debug, Default, Clone)]
pub struct WorkerStats {
    /// Successfully committed transactions.
    pub commits: u64,
    /// Aborted transactions (all reasons).
    pub aborts: u64,
    /// Committed read-only snapshot transactions.
    pub snapshot_commits: u64,
    /// Aborts broken down by reason.
    pub abort_reasons: AbortBreakdown,
    /// Records reclaimed by this worker's garbage collector.
    pub records_reclaimed: u64,
    /// Record allocations served from the per-worker pool.
    pub pool_hits: u64,
    /// Record allocations that went to the global allocator.
    pub pool_misses: u64,
    /// Arena chunks the worker's transaction context allocated (each is one
    /// global-allocator hit; steady state stops adding to this).
    pub arena_chunk_allocs: u64,
    /// Number of in-place record overwrites performed in Phase 3.
    pub inplace_overwrites: u64,
    /// Number of new record versions installed in Phase 3.
    pub new_versions: u64,
}

/// Abort counts per [`AbortReason`].
#[derive(Debug, Default, Clone)]
pub struct AbortBreakdown {
    /// Phase 2 read-set validation failures.
    pub read_validation: u64,
    /// Phase 2 node-set validation failures.
    pub node_validation: u64,
    /// Inserts of already-present keys.
    pub duplicate_key: u64,
    /// Reads that never reached a stable latest version.
    pub unstable_read: u64,
    /// Node-set fix-up failures after the transaction's own inserts.
    pub node_set_fixup: u64,
    /// Application-requested aborts.
    pub user_requested: u64,
}

impl AbortBreakdown {
    /// Records one abort with the given reason.
    pub fn record(&mut self, reason: AbortReason) {
        match reason {
            AbortReason::ReadValidation => self.read_validation += 1,
            AbortReason::NodeValidation => self.node_validation += 1,
            AbortReason::DuplicateKey => self.duplicate_key += 1,
            AbortReason::UnstableRead => self.unstable_read += 1,
            AbortReason::NodeSetFixup => self.node_set_fixup += 1,
            AbortReason::UserRequested => self.user_requested += 1,
        }
    }

    /// Total aborts across all reasons.
    pub fn total(&self) -> u64 {
        self.read_validation
            + self.node_validation
            + self.duplicate_key
            + self.unstable_read
            + self.node_set_fixup
            + self.user_requested
    }
}

impl WorkerStats {
    /// Merges another worker's statistics into this one (driver aggregation).
    pub fn merge(&mut self, other: &WorkerStats) {
        self.commits += other.commits;
        self.aborts += other.aborts;
        self.snapshot_commits += other.snapshot_commits;
        self.records_reclaimed += other.records_reclaimed;
        self.pool_hits += other.pool_hits;
        self.pool_misses += other.pool_misses;
        self.arena_chunk_allocs += other.arena_chunk_allocs;
        self.inplace_overwrites += other.inplace_overwrites;
        self.new_versions += other.new_versions;
        self.abort_reasons.read_validation += other.abort_reasons.read_validation;
        self.abort_reasons.node_validation += other.abort_reasons.node_validation;
        self.abort_reasons.duplicate_key += other.abort_reasons.duplicate_key;
        self.abort_reasons.unstable_read += other.abort_reasons.unstable_read;
        self.abort_reasons.node_set_fixup += other.abort_reasons.node_set_fixup;
        self.abort_reasons.user_requested += other.abort_reasons.user_requested;
    }

    /// Abort rate as a fraction of attempted transactions.
    pub fn abort_rate(&self) -> f64 {
        let attempts = self.commits + self.aborts;
        if attempts == 0 {
            0.0
        } else {
            self.aborts as f64 / attempts as f64
        }
    }

    /// Global-allocator hits per committed transaction: record allocations
    /// that missed the per-worker pool plus arena chunk allocations. Zero in
    /// steady state once pools and arenas are warm.
    pub fn allocs_per_txn(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            (self.pool_misses + self.arena_chunk_allocs) as f64 / self.commits as f64
        }
    }

    /// Aborted attempts per committed transaction.
    pub fn aborts_per_txn(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.aborts as f64 / self.commits as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_totals_match() {
        let mut b = AbortBreakdown::default();
        b.record(AbortReason::ReadValidation);
        b.record(AbortReason::ReadValidation);
        b.record(AbortReason::NodeValidation);
        b.record(AbortReason::DuplicateKey);
        assert_eq!(b.total(), 4);
        assert_eq!(b.read_validation, 2);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = WorkerStats {
            commits: 10,
            aborts: 2,
            ..Default::default()
        };
        let b = WorkerStats {
            commits: 5,
            aborts: 1,
            inplace_overwrites: 7,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.commits, 15);
        assert_eq!(a.aborts, 3);
        assert_eq!(a.inplace_overwrites, 7);
    }

    #[test]
    fn abort_rate_handles_zero_attempts() {
        let s = WorkerStats::default();
        assert_eq!(s.abort_rate(), 0.0);
        let s = WorkerStats {
            commits: 3,
            aborts: 1,
            ..Default::default()
        };
        assert!((s.abort_rate() - 0.25).abs() < 1e-9);
    }
}
