//! Per-thread worker state: epochs, TID generation, garbage collection and
//! the record allocation pool.

use std::sync::Arc;

use silo_check::HistorySession;
use silo_epoch::WorkerEpochHandle;
use silo_tid::{TidGenerator, TidWord};

use crate::config::SiloConfig;
use crate::database::{Database, Table, TableId};
use crate::gc::{Garbage, GarbageList, RecordPool};
use crate::record::{Record, RecordPtr};
use crate::snapshot::SnapshotTxn;
use crate::stats::WorkerStats;
use crate::txn::{Txn, TxnContext};

/// A database worker. One worker is created per worker thread (paper §3:
/// "we run one worker thread per physical core"); it owns the thread-local
/// state the engine needs — the local epochs, the decentralized TID
/// generator, the garbage lists and the record allocation pool — so running
/// transactions requires no shared-memory writes beyond those of the commit
/// protocol itself.
pub struct Worker {
    db: Arc<Database>,
    id: usize,
    epoch: WorkerEpochHandle,
    tid_gen: TidGenerator,
    pub(crate) pool: RecordPool,
    pub(crate) snapshot_garbage: GarbageList,
    pub(crate) tree_garbage: GarbageList,
    pub(crate) stats: WorkerStats,
    /// The reusable transaction context (read/write/node sets, arena). Moved
    /// into each [`Txn`] by [`Worker::begin`] and handed back, cleared, when
    /// the transaction finishes — so steady-state transactions allocate
    /// nothing.
    pub(crate) ctx: TxnContext,
    /// Reusable buffer for garbage ready to be reclaimed, so GC rounds do not
    /// allocate either.
    gc_scratch: Vec<(u64, Garbage)>,
    table_cache: Vec<Option<Arc<Table>>>,
    txns_since_gc: u64,
    /// The worker's history-recording handle, present when the database had a
    /// recorder installed at registration time. All recording goes to this
    /// worker-local buffer; the shared recorder is touched only by the
    /// per-begin enabled check and the flush on drop.
    pub(crate) history: Option<HistorySession>,
}

impl std::fmt::Debug for Worker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Worker")
            .field("id", &self.id)
            .field("commits", &self.stats.commits)
            .field("aborts", &self.stats.aborts)
            .finish_non_exhaustive()
    }
}

impl Worker {
    pub(crate) fn new(db: Arc<Database>, id: usize) -> Self {
        let epoch = db.epochs().register_worker();
        let pool = RecordPool::new(db.config().per_worker_pool);
        let history = db
            .history_recorder()
            .map(|r| HistorySession::new(Arc::clone(r), id));
        Worker {
            db,
            id,
            epoch,
            tid_gen: TidGenerator::new(),
            pool,
            snapshot_garbage: GarbageList::default(),
            tree_garbage: GarbageList::default(),
            stats: WorkerStats::default(),
            ctx: TxnContext::default(),
            gc_scratch: Vec::new(),
            table_cache: Vec::new(),
            txns_since_gc: 0,
            history,
        }
    }

    /// The worker's id (unique within its database).
    pub fn id(&self) -> usize {
        self.id
    }

    /// The database this worker belongs to.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// The engine configuration (convenience accessor).
    pub fn config(&self) -> &SiloConfig {
        self.db.config()
    }

    /// This worker's execution statistics.
    pub fn stats(&self) -> &WorkerStats {
        &self.stats
    }

    /// The worker's epoch handle (used by the commit protocol, the snapshot
    /// scan hook and tests).
    pub(crate) fn epoch(&self) -> &WorkerEpochHandle {
        &self.epoch
    }

    /// The decentralized TID generator.
    pub(crate) fn tid_gen(&mut self) -> &mut TidGenerator {
        &mut self.tid_gen
    }

    /// Resolves a table id to a cached `Arc<Table>` reference, avoiding both
    /// the catalog lock and an `Arc` refcount bump on the hot path.
    pub(crate) fn table_ptr(&mut self, id: TableId) -> *const Table {
        let idx = id as usize;
        if idx >= self.table_cache.len() {
            self.table_cache.resize(idx + 1, None);
        }
        if self.table_cache[idx].is_none() {
            self.table_cache[idx] = Some(self.db.table(id));
        }
        Arc::as_ptr(self.table_cache[idx].as_ref().expect("just populated"))
    }

    /// Starts a new read/write transaction.
    ///
    /// Refreshes the worker's local epochs (`e_w ← E`, `se_w ← SE`) and —
    /// every `gc_interval_txns` transactions — runs the garbage collector
    /// "between requests" as the paper describes.
    pub fn begin(&mut self) -> Txn<'_> {
        self.on_txn_boundary();
        self.epoch.refresh();
        Txn::new(self)
    }

    /// Starts a read-only snapshot transaction on the most recent snapshot
    /// epoch (§4.9). Snapshot transactions never abort.
    pub fn begin_snapshot(&mut self) -> SnapshotTxn<'_> {
        self.on_txn_boundary();
        let (_, sew) = self.epoch.refresh();
        let snapshot_epoch = if self.db.config().enable_snapshots {
            sew
        } else {
            // Snapshots disabled: fall back to reading the latest committed
            // versions (the chain head always qualifies).
            u64::MAX
        };
        SnapshotTxn::new(self, snapshot_epoch)
    }

    /// Starts a read-only snapshot transaction pinned to an *explicit*
    /// snapshot epoch (at most the current global `SE`; larger values are
    /// clamped).
    ///
    /// This is the checkpointer's entry point (§4.9 applied to §4.10's
    /// checkpoints): several workers can walk different tables of the *same*
    /// consistent snapshot concurrently, and a long walk can be split into
    /// many short snapshot transactions — each `begin_snapshot_at` re-pins
    /// `se_w` to the chosen epoch (so the versions that snapshot needs are
    /// never reclaimed mid-walk) while refreshing `e_w` (so the walk never
    /// stalls global epoch advancement).
    pub fn begin_snapshot_at(&mut self, snapshot_epoch: u64) -> SnapshotTxn<'_> {
        self.on_txn_boundary();
        let snapshot_epoch = snapshot_epoch.min(self.db.epochs().global_snapshot_epoch());
        if self.db.config().enable_snapshots {
            self.epoch.refresh_pinned(snapshot_epoch);
            SnapshotTxn::new(self, snapshot_epoch)
        } else {
            // Snapshots disabled: no old versions are retained, so the best
            // available point is the latest committed state.
            self.epoch.refresh();
            SnapshotTxn::new(self, u64::MAX)
        }
    }

    /// Marks the worker quiescent (outside any transaction); it no longer
    /// delays epoch advancement or garbage reclamation.
    pub fn quiesce(&self) {
        self.epoch.quiesce();
    }

    /// Hands this worker's buffered history to the database's recorder (a
    /// no-op when no recorder is installed). Dropping the worker flushes
    /// implicitly; long-lived workers call this so checkers see a complete
    /// history mid-run.
    pub fn flush_history(&mut self) {
        if let Some(history) = &mut self.history {
            history.flush();
        }
    }

    fn on_txn_boundary(&mut self) {
        self.txns_since_gc += 1;
        if self.db.config().enable_gc && self.txns_since_gc >= self.db.config().gc_interval_txns {
            self.txns_since_gc = 0;
            self.collect_garbage();
        }
    }

    /// Allocates a record (through the pool when enabled).
    pub(crate) fn alloc_record(&mut self, data: &[u8], word: TidWord) -> *mut Record {
        self.alloc_record_sized(data, word, 0)
    }

    /// Allocates a record with a minimum data capacity (used for insert
    /// placeholders that will receive their real value at commit time).
    pub(crate) fn alloc_record_sized(
        &mut self,
        data: &[u8],
        word: TidWord,
        min_capacity: usize,
    ) -> *mut Record {
        let ptr = self.pool.allocate(data, word, min_capacity);
        self.stats.pool_hits = self.pool.hits;
        self.stats.pool_misses = self.pool.misses;
        ptr
    }

    /// Registers garbage produced by a committed transaction.
    pub(crate) fn defer_snapshot(&mut self, epoch: u64, garbage: Garbage) {
        if self.db.config().enable_gc {
            self.snapshot_garbage.push(epoch, garbage);
        }
    }

    /// Registers garbage governed by the tree reclamation epoch.
    pub(crate) fn defer_tree(&mut self, epoch: u64, garbage: Garbage) {
        if self.db.config().enable_gc {
            self.tree_garbage.push(epoch, garbage);
        }
    }

    /// Number of garbage items currently awaiting reclamation (diagnostics).
    pub fn pending_garbage(&self) -> usize {
        self.snapshot_garbage.pending() + self.tree_garbage.pending()
    }

    /// Runs one round of epoch-based reclamation (paper §4.8, §4.9).
    ///
    /// * Items in the snapshot list whose epoch `≤` the snapshot reclamation
    ///   epoch are processed: superseded record versions are freed (or
    ///   recycled into the pool) and deleted keys are unhooked from their
    ///   trees, with the unhooked memory deferred again to the tree list.
    /// * Items in the tree list whose epoch `≤` the tree reclamation epoch
    ///   are freed.
    pub fn collect_garbage(&mut self) {
        if !self.db.config().enable_gc {
            return;
        }
        // Pin the current epoch for the duration of the collection: the
        // unhook path reads tree state and record words, which is only safe
        // while this worker is non-quiescent (otherwise another worker's
        // reclamation could free them mid-inspection). `begin` refreshes
        // again afterwards, so the pin never lingers past the boundary.
        self.epoch.refresh();
        let snapshot_reclaim = self.db.epochs().snapshot_reclamation_epoch();
        let tree_reclaim = self.db.epochs().tree_reclamation_epoch();
        let current_epoch = self.db.epochs().global_epoch();

        // The ready items are drained into a reusable buffer (taken while
        // processing, because the unhook path pushes new garbage) so a GC
        // round performs no heap allocation in steady state.
        let mut ready = std::mem::take(&mut self.gc_scratch);

        ready.clear();
        self.snapshot_garbage
            .take_ready_into(snapshot_reclaim, &mut ready);
        for (_, garbage) in ready.drain(..) {
            match garbage {
                Garbage::Record(ptr) => {
                    self.stats.records_reclaimed += 1;
                    // SAFETY: the snapshot reclamation epoch passed, so no
                    // snapshot transaction (or regular reader) can still reach
                    // this superseded version.
                    unsafe { self.pool.recycle(ptr) };
                }
                Garbage::TreeKey(entry) => drop(entry),
                Garbage::Unhook { table, key, record } => {
                    self.unhook_deleted_key(table, key, record, current_epoch);
                }
            }
        }

        self.tree_garbage.take_ready_into(tree_reclaim, &mut ready);
        for (_, garbage) in ready.drain(..) {
            match garbage {
                Garbage::Record(ptr) => {
                    self.stats.records_reclaimed += 1;
                    // SAFETY: the tree reclamation epoch passed, so no worker
                    // still inside a transaction from the registration epoch
                    // can hold a pointer to this record.
                    unsafe { self.pool.recycle(ptr) };
                }
                Garbage::TreeKey(entry) => drop(entry),
                Garbage::Unhook { table, key, record } => {
                    // Unhook items normally live in the snapshot list; handle
                    // them here too for robustness.
                    self.unhook_deleted_key(table, key, record, current_epoch);
                }
            }
        }

        self.gc_scratch = ready;
    }

    /// Stage-two cleanup for a deleted key (§4.9): if the absent record is
    /// still the latest version, remove the key from the index and defer the
    /// record (and the removed leaf key buffer) to the tree reclamation
    /// epoch. If it was superseded by a later insert, do nothing — the
    /// inserting transaction reused the record.
    ///
    /// The record pointer carried by an `Unhook` entry must **not** be
    /// dereferenced before it is validated through the index: a concurrent
    /// insert may have revived the absent record and a later update may have
    /// superseded it, in which case the superseding transaction owns its
    /// reclamation and may already have freed (or recycled) the memory. So
    /// the check order is: (1) the index still maps `key` to this exact
    /// record — our non-quiescent epoch pin then guarantees the record is
    /// alive, because any supersession after the lookup defers reclamation
    /// past our pin; (2) the record's lock bit is acquired; (3) the word is
    /// still latest + absent. Only then is the key unhooked. Either we lock
    /// first — then we also clear the latest bit, so a reviver's Phase 2
    /// aborts — or the reviver locks first and we skip this round.
    fn unhook_deleted_key(
        &mut self,
        table_id: TableId,
        key: Vec<u8>,
        record: RecordPtr,
        current_epoch: u64,
    ) {
        let table_ptr = self.table_ptr(table_id);
        // SAFETY: the table cache keeps the Arc alive for the worker's
        // lifetime.
        let table = unsafe { &*table_ptr };
        let (value, _, _) = table.tree().get_tracked(&key);
        if value != Some(record.0 as u64) {
            // The key no longer maps to this record (or is gone entirely): a
            // later insert superseded it, and that transaction's garbage
            // registration owns the record now. The pointer may dangle —
            // do not touch it.
            return;
        }
        // SAFETY: the index maps `key` to this record and our epoch pin is
        // non-quiescent, so the record cannot have been reclaimed.
        let tid = unsafe { (*record.0).tid() };
        if !tid.try_lock() {
            // A committing transaction holds the record; try again at the
            // next collection round.
            self.snapshot_garbage.push(
                current_epoch,
                Garbage::Unhook {
                    table: table_id,
                    key,
                    record,
                },
            );
            return;
        }
        let word = tid.load();
        if !word.is_latest() || !word.is_absent() {
            // Revived by a later insert (still the index head, so it is the
            // live record): nothing to clean up.
            tid.unlock();
            return;
        }
        // Make the record unrevivable before touching the index, so any
        // transaction that still holds a pointer to it fails validation.
        tid.store_and_unlock(word.with_latest(false).with_locked(false));

        // Holding the record's lock (and having cleared `latest`) excludes
        // every path that replaces the index value (`install_new_version`
        // runs under the old record's lock), so the mapping is still ours.
        if let Some(removed) = table.tree().remove(&key) {
            self.tree_garbage
                .push(current_epoch, Garbage::TreeKey(removed));
        }
        self.tree_garbage
            .push(current_epoch, Garbage::Record(record));
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        // Tell the durability subsystem (if any) that this worker will not
        // commit again, so it can flush the worker's partial log buffer and
        // stop letting it hold back the durable epoch.
        if let Some(hook) = self.db.commit_hook() {
            hook.on_worker_finish(self.id);
        }
        // Do not free pending garbage here: superseded versions are still
        // reachable through the live records' previous-version chains and
        // absent records are still referenced by the index, so the Database's
        // drop (which walks the trees) remains the single owner of anything
        // still attached to the tree. Unattached items are leaked rather than
        // risk a double free; in practice drivers run `collect_garbage` until
        // quiescent before dropping workers.
        self.quiesce();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SiloConfig;

    #[test]
    fn worker_has_unique_ids_and_table_cache() {
        let db = Database::open(SiloConfig::for_testing());
        let t = db.create_table("t").unwrap();
        let mut w = db.register_worker();
        let p1 = w.table_ptr(t);
        let p2 = w.table_ptr(t);
        assert_eq!(p1, p2);
        // SAFETY: cache keeps the table alive.
        assert_eq!(unsafe { (*p1).name() }, "t");
    }

    #[test]
    fn gc_disabled_ignores_registrations() {
        let db = Database::open(SiloConfig::for_testing().without_gc());
        let mut w = db.register_worker();
        w.defer_tree(1, Garbage::Record(RecordPtr::null()));
        assert_eq!(w.pending_garbage(), 0);
        w.collect_garbage();
    }

    #[test]
    fn quiesce_releases_epoch_pin() {
        let db = Database::open(SiloConfig::for_testing());
        let w = db.register_worker();
        let _ = w.epoch().refresh();
        assert_ne!(w.epoch().local_epoch(), silo_epoch::QUIESCENT);
        w.quiesce();
        assert_eq!(w.epoch().local_epoch(), silo_epoch::QUIESCENT);
    }
}
