//! The database catalog: tables, index trees, and engine-wide state.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::RwLock;
use silo_check::HistoryRecorder;
use silo_epoch::{EpochAdvancer, EpochManager};
use silo_index::Tree;
use silo_tid::{GlobalTidGenerator, Tid};

use crate::config::SiloConfig;
use crate::error::CatalogError;
use crate::record::Record;
use crate::worker::Worker;

/// Identifier of a table within a database.
pub type TableId = u32;

/// A table: a name plus the primary index tree mapping keys to records.
///
/// Secondary indexes are, as in the paper (§4.7), simply additional tables
/// whose records contain primary keys; the engine does not treat them
/// specially.
#[derive(Debug)]
pub struct Table {
    id: TableId,
    name: String,
    tree: Tree,
}

impl Table {
    /// The table's id.
    pub fn id(&self) -> TableId {
        self.id
    }

    /// The table's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying index tree. Exposed for the engine and for
    /// non-transactional baselines; transactional code goes through
    /// [`crate::Txn`].
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// Approximate number of keys (including logically absent records).
    pub fn approximate_len(&self) -> usize {
        self.tree.len()
    }

    /// Frees every record reachable from the tree as the *latest* version.
    ///
    /// Previous-version chain members are *not* followed: every superseded
    /// version was registered with some worker's garbage collector at the
    /// moment it was superseded, so it is either already freed (its pointer
    /// here would dangle) or owned by that worker's pending garbage list.
    /// Walking the chain would double-free the former; skipping it at worst
    /// leaks the latter (bounded by garbage pending at worker shutdown).
    ///
    /// # Safety
    ///
    /// Must only be called with exclusive access to the database (no workers,
    /// no concurrent transactions), i.e. from `Database::drop`.
    unsafe fn free_all_records(&self) {
        let all = self.tree.scan(b"", None, None);
        for (_, value) in all.entries {
            let record = value as *mut Record;
            if !record.is_null() {
                // SAFETY: exclusive access per the caller's contract; head
                // records are owned by the tree and freed exactly once here.
                unsafe { Record::free(record) };
            }
        }
    }
}

/// One record modification reported to a [`CommitHook`].
#[derive(Debug, Clone, Copy)]
pub struct CommitWrite<'a> {
    /// The table the write applies to.
    pub table: TableId,
    /// The record's key.
    pub key: &'a [u8],
    /// The new value, or `None` for a delete.
    pub value: Option<&'a [u8]>,
}

/// A borrowed, allocation-free view of a committed transaction's writes,
/// passed to [`CommitHook::on_commit`].
///
/// The engine hands the hook a view over its (arena-backed) write-set rather
/// than a materialized slice, so the durability layer can serialize each
/// write straight into its log buffer without the engine cloning keys or
/// values first — the zero-copy commit→log handoff of §4.10.
pub trait CommitWrites {
    /// Number of writes in the transaction.
    fn count(&self) -> usize;

    /// Invokes `f` once per write, in write-set (lock) order.
    fn for_each(&self, f: &mut dyn FnMut(CommitWrite<'_>));
}

impl CommitWrites for [CommitWrite<'_>] {
    fn count(&self) -> usize {
        self.len()
    }

    fn for_each(&self, f: &mut dyn FnMut(CommitWrite<'_>)) {
        for w in self {
            f(*w);
        }
    }
}

/// The durability subsystem's backpressure signal (see
/// [`CommitHook::durability_health`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurabilityHealth {
    /// Durability is keeping up with the global epoch.
    Healthy,
    /// The durable epoch is lagging the global epoch beyond the configured
    /// watermark (a stalled or backlogged log device). Commits still succeed
    /// but their durability acknowledgements are delayed; callers should
    /// shed load or slow down.
    Degraded {
        /// How many epochs the durable epoch trails the global epoch by.
        lag_epochs: u64,
    },
    /// Durability has failed permanently (e.g. a logger exhausted its retry
    /// budget on a dead device). Commits still execute in memory but will
    /// never be acknowledged durable.
    Failed,
}

/// Hook invoked by workers when a transaction commits, used by the durability
/// subsystem (`silo-log`) to build redo log records without the engine
/// depending on it.
pub trait CommitHook: Send + Sync {
    /// Called once per committed transaction, after Phase 3 released all
    /// locks. `writes` exposes every modified record; the borrowed keys and
    /// values are only valid for the duration of the call.
    fn on_commit(&self, worker_id: usize, tid: Tid, writes: &dyn CommitWrites);

    /// Called when a worker finishes (used to flush partial buffers).
    fn on_worker_finish(&self, _worker_id: usize) {}

    /// The hook's current durability health, for backpressure. Hooks that
    /// cannot fail (or do not track failure) report
    /// [`DurabilityHealth::Healthy`].
    fn durability_health(&self) -> DurabilityHealth {
        DurabilityHealth::Healthy
    }
}

/// The Silo database: configuration, epoch subsystem, and table catalog.
///
/// A `Database` is shared by reference ([`Arc`]) between worker threads; each
/// worker registers itself with [`Database::register_worker`] and runs
/// transactions through the returned [`Worker`].
pub struct Database {
    config: SiloConfig,
    epochs: Arc<EpochManager>,
    advancer: parking_lot::Mutex<Option<EpochAdvancer>>,
    tables: RwLock<Vec<Arc<Table>>>,
    by_name: RwLock<HashMap<String, TableId>>,
    global_tid: GlobalTidGenerator,
    commit_hook: OnceLock<Arc<dyn CommitHook>>,
    history: OnceLock<Arc<HistoryRecorder>>,
    next_worker_id: AtomicUsize,
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("tables", &self.tables.read().len())
            .field("epoch", &self.epochs.global_epoch())
            .finish_non_exhaustive()
    }
}

impl Database {
    /// Opens a new, empty in-memory database with the given configuration.
    pub fn open(config: SiloConfig) -> Arc<Database> {
        let epochs = EpochManager::new(config.epoch.clone());
        let advancer = if config.spawn_epoch_advancer {
            Some(EpochAdvancer::spawn(Arc::clone(&epochs)))
        } else {
            None
        };
        Arc::new(Database {
            config,
            epochs,
            advancer: parking_lot::Mutex::new(advancer),
            tables: RwLock::new(Vec::new()),
            by_name: RwLock::new(HashMap::new()),
            global_tid: GlobalTidGenerator::new(),
            commit_hook: OnceLock::new(),
            history: OnceLock::new(),
            next_worker_id: AtomicUsize::new(0),
        })
    }

    /// Opens a database with the default ("MemSilo") configuration.
    pub fn open_default() -> Arc<Database> {
        Self::open(SiloConfig::default())
    }

    /// The engine configuration.
    pub fn config(&self) -> &SiloConfig {
        &self.config
    }

    /// The epoch subsystem.
    pub fn epochs(&self) -> &Arc<EpochManager> {
        &self.epochs
    }

    /// The shared TID counter used when `config.global_tid` is set.
    pub(crate) fn global_tid_generator(&self) -> &GlobalTidGenerator {
        &self.global_tid
    }

    /// Installs the commit hook (at most once, before workers start
    /// committing). Returns `Err` with the hook if one is already installed.
    pub fn set_commit_hook(&self, hook: Arc<dyn CommitHook>) -> Result<(), Arc<dyn CommitHook>> {
        self.commit_hook.set(hook)
    }

    /// The installed commit hook, if any.
    pub(crate) fn commit_hook(&self) -> Option<&Arc<dyn CommitHook>> {
        self.commit_hook.get()
    }

    /// Installs a history recorder (at most once, before workers register:
    /// only workers created *after* the install record). Each worker buffers
    /// its session locally and submits it to the recorder when dropped; see
    /// `silo_check::HistoryRecorder` for the collection side and
    /// `silo_check::check_serializability` for what the histories are for.
    ///
    /// Returns `Err` with the recorder if one is already installed.
    pub fn set_history_recorder(
        &self,
        recorder: Arc<HistoryRecorder>,
    ) -> Result<(), Arc<HistoryRecorder>> {
        self.history.set(recorder)
    }

    /// The installed history recorder, if any.
    pub fn history_recorder(&self) -> Option<&Arc<HistoryRecorder>> {
        self.history.get()
    }

    /// The durability subsystem's backpressure signal. A database without a
    /// commit hook is always [`DurabilityHealth::Healthy`] — it never
    /// promised durability in the first place.
    pub fn durability_health(&self) -> DurabilityHealth {
        self.commit_hook
            .get()
            .map_or(DurabilityHealth::Healthy, |h| h.durability_health())
    }

    /// Creates a new table, returning its id.
    pub fn create_table(&self, name: &str) -> Result<TableId, CatalogError> {
        let mut by_name = self.by_name.write();
        if by_name.contains_key(name) {
            return Err(CatalogError::TableExists(name.to_string()));
        }
        let mut tables = self.tables.write();
        let id = tables.len() as TableId;
        tables.push(Arc::new(Table {
            id,
            name: name.to_string(),
            tree: Tree::new(),
        }));
        by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// Looks up a table by id.
    pub fn table(&self, id: TableId) -> Arc<Table> {
        Arc::clone(&self.tables.read()[id as usize])
    }

    /// Looks up a table by id, returning `None` for unknown ids.
    pub fn try_table(&self, id: TableId) -> Option<Arc<Table>> {
        self.tables.read().get(id as usize).cloned()
    }

    /// Looks up a table id by name.
    pub fn table_id(&self, name: &str) -> Result<TableId, CatalogError> {
        self.by_name
            .read()
            .get(name)
            .copied()
            .ok_or_else(|| CatalogError::NoSuchTable(name.to_string()))
    }

    /// All table ids currently in the catalog.
    pub fn table_ids(&self) -> Vec<TableId> {
        (0..self.tables.read().len() as TableId).collect()
    }

    /// Index statistics aggregated over every table (node counts per level,
    /// trie layers, splits, reader retries — see
    /// [`silo_index::IndexStats`]). Structure counts are approximate while
    /// writers are active.
    pub fn index_stats(&self) -> silo_index::IndexStats {
        let mut stats = silo_index::IndexStats::default();
        for table in self.tables.read().iter() {
            stats.merge(&table.tree().stats());
        }
        stats
    }

    /// Registers a new worker thread with the engine.
    pub fn register_worker(self: &Arc<Self>) -> Worker {
        let id = self.next_worker_id.fetch_add(1, Ordering::Relaxed);
        Worker::new(Arc::clone(self), id)
    }

    /// Stops the background epoch advancer (if one is running). Called
    /// automatically on drop; exposed so benchmarks can quiesce the system.
    pub fn stop_epoch_advancer(&self) {
        let mut guard = self.advancer.lock();
        if let Some(adv) = guard.take() {
            adv.stop();
        }
    }
}

impl Drop for Database {
    fn drop(&mut self) {
        self.stop_epoch_advancer();
        // Free every record still referenced by the tables. Superseded
        // versions that workers registered for reclamation but never freed
        // are reachable through the latest versions' `prev` chains and are
        // freed here too (workers hand orphaned garbage back on drop only if
        // it is *not* reachable from the tree — see `Worker`).
        let tables = self.tables.get_mut();
        for table in tables.iter() {
            // SAFETY: `&mut self` in Drop guarantees exclusive access; all
            // workers hold an `Arc<Database>`, so none can still be alive.
            unsafe { table.free_all_records() };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_lookup_tables() {
        let db = Database::open(SiloConfig::for_testing());
        let a = db.create_table("alpha").unwrap();
        let b = db.create_table("beta").unwrap();
        assert_ne!(a, b);
        assert_eq!(db.table_id("alpha").unwrap(), a);
        assert_eq!(db.table(b).name(), "beta");
        assert_eq!(db.table_ids().len(), 2);
        assert!(matches!(
            db.create_table("alpha"),
            Err(CatalogError::TableExists(_))
        ));
        assert!(matches!(
            db.table_id("gamma"),
            Err(CatalogError::NoSuchTable(_))
        ));
        assert!(db.try_table(99).is_none());
    }

    #[test]
    fn worker_registration_assigns_unique_ids() {
        let db = Database::open(SiloConfig::for_testing());
        let w1 = db.register_worker();
        let w2 = db.register_worker();
        assert_ne!(w1.id(), w2.id());
    }

    #[test]
    fn commit_hook_can_only_be_set_once() {
        struct NullHook;
        impl CommitHook for NullHook {
            fn on_commit(&self, _: usize, _: Tid, _: &dyn CommitWrites) {}
        }
        let db = Database::open(SiloConfig::for_testing());
        assert!(db.set_commit_hook(Arc::new(NullHook)).is_ok());
        assert!(db.set_commit_hook(Arc::new(NullHook)).is_err());
    }

    #[test]
    fn advancer_runs_when_configured() {
        let mut cfg = SiloConfig::for_testing();
        cfg.spawn_epoch_advancer = true;
        let db = Database::open(cfg);
        let e0 = db.epochs().global_epoch();
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(db.epochs().global_epoch() > e0);
        db.stop_epoch_advancer();
    }
}
