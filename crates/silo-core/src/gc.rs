//! Typed garbage lists and the per-worker record allocation pool.
//!
//! Workers generate three kinds of garbage (paper §4.8, §4.9):
//!
//! * **Superseded record versions** — freed once no snapshot transaction can
//!   reach them (snapshot reclamation epoch).
//! * **Absent records left behind by deletes** (and by aborted inserts) —
//!   reclaimed in two stages: once the snapshot reclamation epoch passes, the
//!   record is unhooked from the tree (if it is still the latest version);
//!   the unhooked record and the removed leaf key then wait for the tree
//!   reclamation epoch before the memory is freed.
//! * **Index key buffers** removed from leaves — freed after the tree
//!   reclamation epoch.
//!
//! Each worker owns its lists, so registering garbage never writes shared
//! memory; reclamation runs in the worker between transactions.
//!
//! The [`RecordPool`] implements the `+Allocator` knob of the factor analysis
//! (Figure 11): reclaimed record allocations are recycled by the same worker
//! instead of going back to the global allocator, standing in for the paper's
//! NUMA-aware allocator (see DESIGN.md).

use silo_index::RemovedEntry;
use silo_tid::TidWord;

use crate::database::TableId;
use crate::record::{Record, RecordPtr};

/// One unit of deferred work, tagged with the epoch after which it may run.
#[derive(Debug)]
pub(crate) enum Garbage {
    /// Free (or recycle) a record that is no longer reachable by new readers.
    Record(RecordPtr),
    /// Drop a key buffer that was removed from an index leaf.
    TreeKey(RemovedEntry),
    /// Stage-one cleanup of a deleted key: if `record` is still the latest,
    /// absent version for `key`, remove the key from `table`'s index and
    /// schedule the record itself for the tree reclamation epoch.
    Unhook {
        /// Table whose index holds the absent record.
        table: TableId,
        /// The deleted key.
        key: Vec<u8>,
        /// The absent record installed by the delete.
        record: RecordPtr,
    },
}

/// A per-worker list of `(reclamation_epoch, garbage)` pairs.
#[derive(Debug, Default)]
pub(crate) struct GarbageList {
    items: Vec<(u64, Garbage)>,
}

impl GarbageList {
    /// Registers `garbage` to be processed once the relevant reclamation
    /// epoch reaches `epoch`.
    pub(crate) fn push(&mut self, epoch: u64, garbage: Garbage) {
        self.items.push((epoch, garbage));
    }

    /// Moves every item whose epoch is `≤ up_to` into `out` (which the caller
    /// reuses across GC rounds, keeping reclamation allocation-free). Items
    /// are extracted with `swap_remove`, so relative order is not preserved —
    /// reclamation order within a round is immaterial.
    pub(crate) fn take_ready_into(&mut self, up_to: u64, out: &mut Vec<(u64, Garbage)>) {
        let mut i = 0;
        while i < self.items.len() {
            if self.items[i].0 <= up_to {
                out.push(self.items.swap_remove(i));
            } else {
                i += 1;
            }
        }
    }

    /// Removes and returns all items regardless of epoch (shutdown).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn take_all(&mut self) -> Vec<(u64, Garbage)> {
        std::mem::take(&mut self.items)
    }

    /// Number of pending items.
    pub(crate) fn pending(&self) -> usize {
        self.items.len()
    }
}

/// Size classes used by the per-worker record pool (bytes of data capacity).
const POOL_CLASSES: &[usize] = &[16, 32, 64, 128, 256, 512, 1024];
/// Maximum number of recycled allocations retained per class.
const POOL_CLASS_LIMIT: usize = 4096;

/// A per-worker pool of recycled record allocations (`+Allocator`).
#[derive(Debug)]
pub(crate) struct RecordPool {
    enabled: bool,
    classes: Vec<Vec<RecordPtr>>,
    /// Allocations served from the pool.
    pub(crate) hits: u64,
    /// Allocations that fell through to the global allocator.
    pub(crate) misses: u64,
}

impl RecordPool {
    pub(crate) fn new(enabled: bool) -> Self {
        RecordPool {
            enabled,
            classes: POOL_CLASSES.iter().map(|_| Vec::new()).collect(),
            hits: 0,
            misses: 0,
        }
    }

    fn class_index(len: usize) -> Option<usize> {
        POOL_CLASSES.iter().position(|&c| len <= c)
    }

    /// Allocates a record with the given data and TID word and a capacity of
    /// at least `min_capacity`, recycling a pooled allocation when possible.
    pub(crate) fn allocate(
        &mut self,
        data: &[u8],
        word: TidWord,
        min_capacity: usize,
    ) -> *mut Record {
        let needed = data.len().max(min_capacity);
        if self.enabled {
            if let Some(class) = Self::class_index(needed) {
                if let Some(ptr) = self.classes[class].pop() {
                    self.hits += 1;
                    // SAFETY: pooled records were reclaimed (no other thread
                    // can reach them) and belong to a class with capacity
                    // ≥ needed ≥ data.len().
                    unsafe { Record::reinit(ptr.0, data, word) };
                    return ptr.0;
                }
                self.misses += 1;
                return Record::allocate(data, word, POOL_CLASSES[class]);
            }
        }
        self.misses += 1;
        Record::allocate(data, word, min_capacity)
    }

    /// Returns a reclaimed record to the pool, or frees it when pooling is
    /// disabled / the pool is full / the capacity does not match a class.
    ///
    /// # Safety
    ///
    /// The caller must guarantee the record is unreachable (its reclamation
    /// epoch has passed) and owned exclusively by this worker's GC.
    pub(crate) unsafe fn recycle(&mut self, ptr: RecordPtr) {
        if self.enabled && !ptr.is_null() {
            // SAFETY: exclusive ownership per the caller's contract.
            let cap = unsafe { (*ptr.0).capacity() };
            if let Some(class) = POOL_CLASSES.iter().position(|&c| c == cap) {
                if self.classes[class].len() < POOL_CLASS_LIMIT {
                    self.classes[class].push(ptr);
                    return;
                }
            }
        }
        if !ptr.is_null() {
            // SAFETY: exclusive ownership per the caller's contract.
            unsafe { Record::free(ptr.0) };
        }
    }

    /// Number of allocations currently cached in the pool.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn pooled(&self) -> usize {
        self.classes.iter().map(Vec::len).sum()
    }
}

impl Drop for RecordPool {
    fn drop(&mut self) {
        for class in &mut self.classes {
            for ptr in class.drain(..) {
                // SAFETY: pooled records are unreachable by construction and
                // owned by the pool.
                unsafe { Record::free(ptr.0) };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silo_tid::Tid;

    fn word() -> TidWord {
        TidWord::new(Tid::new(1, 1), false, true, false)
    }

    #[test]
    fn garbage_list_partitions_by_epoch() {
        let mut list = GarbageList::default();
        list.push(3, Garbage::Record(RecordPtr::null()));
        list.push(5, Garbage::Record(RecordPtr::null()));
        list.push(1, Garbage::Record(RecordPtr::null()));
        assert_eq!(list.pending(), 3);
        let mut ready = Vec::new();
        list.take_ready_into(3, &mut ready);
        assert_eq!(ready.len(), 2);
        assert!(ready.iter().all(|(epoch, _)| *epoch <= 3));
        assert_eq!(list.pending(), 1);
        // A second round with the same bound finds nothing new.
        ready.clear();
        list.take_ready_into(3, &mut ready);
        assert!(ready.is_empty());
        let rest = list.take_all();
        assert_eq!(rest.len(), 1);
        assert_eq!(list.pending(), 0);
    }

    #[test]
    fn pool_recycles_matching_classes() {
        let mut pool = RecordPool::new(true);
        let r1 = pool.allocate(b"0123456789", word(), 0);
        // SAFETY: just allocated, not shared.
        assert_eq!(unsafe { (*r1).capacity() }, 16);
        assert_eq!(pool.misses, 1);
        // SAFETY: unreachable by anyone else in this test.
        unsafe { pool.recycle(RecordPtr(r1)) };
        assert_eq!(pool.pooled(), 1);
        let r2 = pool.allocate(b"abc", word(), 0);
        assert_eq!(r2, r1, "allocation should be recycled");
        assert_eq!(pool.hits, 1);
        let mut out = Vec::new();
        // SAFETY: r2 is exclusively owned here.
        unsafe { (*r2).read_data_unvalidated(&mut out) };
        assert_eq!(out, b"abc");
        // SAFETY: sole owner.
        unsafe { Record::free(r2) };
    }

    #[test]
    fn pool_disabled_always_frees() {
        let mut pool = RecordPool::new(false);
        let r = pool.allocate(b"xyz", word(), 0);
        assert_eq!(pool.misses, 1);
        // SAFETY: unreachable by anyone else.
        unsafe { pool.recycle(RecordPtr(r)) };
        assert_eq!(pool.pooled(), 0);
        let r2 = pool.allocate(b"xyz", word(), 0);
        assert_eq!(pool.hits, 0);
        // SAFETY: sole owner.
        unsafe { Record::free(r2) };
    }

    #[test]
    fn oversized_allocations_bypass_the_pool() {
        let mut pool = RecordPool::new(true);
        let big = vec![7u8; 4096];
        let r = pool.allocate(&big, word(), 0);
        // SAFETY: just allocated.
        assert_eq!(unsafe { (*r).capacity() }, 4096);
        // SAFETY: unreachable by anyone else; capacity matches no class, so
        // recycle frees it.
        unsafe { pool.recycle(RecordPtr(r)) };
        assert_eq!(pool.pooled(), 0);
    }

    #[test]
    fn pool_drop_frees_cached_records() {
        let mut pool = RecordPool::new(true);
        for i in 0..10u8 {
            let r = pool.allocate(&[i; 20], word(), 0);
            // SAFETY: unreachable by anyone else.
            unsafe { pool.recycle(RecordPtr(r)) };
        }
        assert!(pool.pooled() >= 1);
        drop(pool); // must not leak or double-free (checked by sanitizers/miri in CI)
    }
}
