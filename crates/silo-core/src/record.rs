//! Record layout and the record read/write protocols (paper §4.3, §4.5).
//!
//! A record contains:
//!
//! * a **TID word** ([`AtomicTidWord`]) — the TID of the transaction that
//!   most recently modified the record, plus the lock / latest-version /
//!   absent status bits;
//! * a **previous-version pointer** — a singly linked chain of superseded
//!   versions kept for snapshot transactions (§4.9);
//! * the **record data** — an inline byte buffer of fixed capacity. When an
//!   update fits into the existing capacity and no snapshot needs the old
//!   version, Silo overwrites the data in place (§4.5), which is the
//!   `+Overwrites` factor of Figure 11.
//!
//! A record and its data buffer are **one** heap allocation: the header is
//! followed immediately by `cap` data bytes (the layout the paper's C++
//! implementation uses). This halves allocator traffic per record, keeps the
//! TID word and the data it guards on the same cache lines, and lets the
//! per-worker pool recycle the whole record with a single pointer.
//!
//! # Reading record data
//!
//! Because committed transactions may overwrite record data in place,
//! readers use a version-validation protocol ([`Record::read_consistent`]):
//! read the TID word (spinning while locked), copy the data, then re-read the
//! TID word; if it changed, retry. The byte copy itself can race with an
//! in-flight in-place overwrite — the copied bytes are discarded in that case
//! because the trailing TID check fails. This is the same seqlock-style
//! discipline the paper describes; the data buffer contains only plain bytes
//! (never pointers the reader would dereference), and disabling
//! `overwrite_in_place` removes the race entirely (every update then installs
//! a freshly allocated record).

use std::alloc::Layout;
use std::sync::atomic::{fence, AtomicPtr, AtomicUsize, Ordering};

use silo_tid::{AtomicTidWord, TidWord};

/// A heap-allocated record. Records are reference by raw pointer from index
/// leaves and from previous-version chains; their lifetime is governed by the
/// epoch-based reclamation scheme (§4.8), never by Rust ownership alone.
///
/// The data buffer lives *inside* the record's own allocation, immediately
/// after the header; `buf` caches its address (it cannot be recomputed from a
/// `&Record` without losing provenance over the tail of the allocation).
#[derive(Debug)]
pub struct Record {
    tid: AtomicTidWord,
    prev: AtomicPtr<Record>,
    len: AtomicUsize,
    cap: usize,
    buf: *mut u8,
}

// SAFETY: all mutable state is accessed through atomics or under the record
// lock per the protocols documented above; the data buffer is plain bytes.
unsafe impl Send for Record {}
// SAFETY: see above.
unsafe impl Sync for Record {}

impl Record {
    /// The layout of a record with `cap` inline data bytes: the header
    /// followed by the buffer, in a single allocation.
    fn layout_for(cap: usize) -> Layout {
        let header = Layout::new::<Record>();
        // `u8` needs no alignment, so the data begins exactly at the end of
        // the header and the combined layout keeps the header's alignment.
        Layout::from_size_align(header.size() + cap, header.align()).expect("record layout")
    }

    /// Allocates a record holding a copy of `data`, with capacity at least
    /// `max(data.len(), min_capacity)`, and the given initial TID word.
    /// Returns a leaked pointer; free with [`Record::free`].
    pub fn allocate(data: &[u8], word: TidWord, min_capacity: usize) -> *mut Record {
        let cap = data.len().max(min_capacity);
        let layout = Self::layout_for(cap);
        // SAFETY: the layout has non-zero size (the header alone is not
        // empty).
        let raw = unsafe { std::alloc::alloc(layout) };
        if raw.is_null() {
            std::alloc::handle_alloc_error(layout);
        }
        let ptr = raw as *mut Record;
        // SAFETY: `raw` is a fresh allocation of `layout_for(cap)` bytes: big
        // enough for the header plus `cap` data bytes right after it.
        unsafe {
            let buf = raw.add(std::mem::size_of::<Record>());
            ptr.write(Record {
                tid: AtomicTidWord::new(word),
                prev: AtomicPtr::new(std::ptr::null_mut()),
                len: AtomicUsize::new(data.len()),
                cap,
                buf,
            });
            if !data.is_empty() {
                std::ptr::copy_nonoverlapping(data.as_ptr(), buf, data.len());
            }
        }
        ptr
    }

    /// Frees a record previously produced by [`Record::allocate`].
    ///
    /// # Safety
    ///
    /// `ptr` must have come from [`Record::allocate`], must not have been
    /// freed already, and no other thread may access it afterwards (callers
    /// defer this through the epoch-based reclamation scheme).
    pub unsafe fn free(ptr: *mut Record) {
        debug_assert!(!ptr.is_null());
        // SAFETY: allocated by `allocate` with exactly this layout. No field
        // of `Record` owns heap memory (the data bytes live inside this same
        // allocation), so deallocating is all the cleanup there is.
        unsafe {
            let layout = Self::layout_for((*ptr).cap);
            std::alloc::dealloc(ptr as *mut u8, layout);
        }
    }

    /// Re-initializes a recycled record allocation with new contents, for the
    /// per-worker allocation pool (`+Allocator`).
    ///
    /// # Safety
    ///
    /// The caller must own `ptr` exclusively (it was reclaimed and has not
    /// been republished), and `data.len()` must not exceed its capacity.
    pub unsafe fn reinit(ptr: *mut Record, data: &[u8], word: TidWord) {
        // SAFETY: exclusive ownership per the caller's contract.
        let rec = unsafe { &*ptr };
        debug_assert!(data.len() <= rec.cap);
        if !data.is_empty() {
            // SAFETY: capacity checked above; exclusive ownership.
            unsafe { std::ptr::copy_nonoverlapping(data.as_ptr(), rec.buf, data.len()) };
        }
        rec.len.store(data.len(), Ordering::Release);
        rec.prev.store(std::ptr::null_mut(), Ordering::Release);
        rec.tid.store(word);
    }

    /// The record's TID word.
    pub fn tid(&self) -> &AtomicTidWord {
        &self.tid
    }

    /// The previous (superseded) version, or null.
    pub fn prev(&self) -> *mut Record {
        self.prev.load(Ordering::Acquire)
    }

    /// Links `prev` as the previous version of this record.
    pub fn set_prev(&self, prev: *mut Record) {
        self.prev.store(prev, Ordering::Release);
    }

    /// The data buffer capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// The current data length in bytes (racy; exact only under the lock).
    pub fn data_len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Whether `data` would fit into this record's buffer for an in-place
    /// overwrite.
    pub fn fits(&self, data: &[u8]) -> bool {
        data.len() <= self.cap
    }

    /// Overwrites the record data in place (§4.5 Phase 3, step (a)).
    ///
    /// # Safety
    ///
    /// The caller must hold the record's lock bit and `data` must fit
    /// (`self.fits(data)`). Concurrent readers may be copying the old bytes;
    /// they will discard the copy when their trailing TID-word check fails.
    pub unsafe fn overwrite(&self, data: &[u8]) {
        debug_assert!(self.fits(data));
        if !data.is_empty() {
            // SAFETY: capacity checked by the caller contract; the lock bit
            // excludes concurrent writers.
            unsafe { std::ptr::copy_nonoverlapping(data.as_ptr(), self.buf, data.len()) };
        }
        self.len.store(data.len(), Ordering::Release);
        // The paper's step (b): a fence so the new data is visible before the
        // new TID word is published by the subsequent unlocking store.
        fence(Ordering::Release);
    }

    /// Copies the record data into `out` without validation.
    ///
    /// Only correct for record versions that can no longer change: superseded
    /// snapshot versions (their epoch precedes the current snapshot epoch, so
    /// they are never overwritten in place) or records the caller has locked.
    pub fn read_data_unvalidated(&self, out: &mut Vec<u8>) {
        out.clear();
        let len = self.len.load(Ordering::Acquire).min(self.cap);
        if len > 0 {
            out.reserve(len);
            // SAFETY: `buf` has `cap >= len` readable bytes for the lifetime
            // of the record.
            unsafe {
                std::ptr::copy_nonoverlapping(self.buf, out.as_mut_ptr(), len);
                out.set_len(len);
            }
        }
    }

    /// The record read protocol of §4.5: spin until unlocked, copy the data,
    /// and re-check the TID word; retry on interference. Returns the TID word
    /// under which the copy is known to be consistent.
    pub fn read_consistent(&self, out: &mut Vec<u8>) -> TidWord {
        loop {
            // (a) read the TID word, spinning until the lock is clear.
            let w1 = self.tid.read_stable();
            // (b)/(c) copy the data (the caller decides what to do about the
            // latest/absent bits; the copy is consistent either way).
            self.read_data_unvalidated(out);
            // (d) memory fence.
            fence(Ordering::Acquire);
            // (e) check the TID word again.
            let w2 = self.tid.load();
            if w1 == w2 {
                return w1;
            }
        }
    }

    /// Walks the previous-version chain (including `self`) and returns the
    /// most recent version whose TID epoch is `≤ snapshot_epoch`, if any.
    ///
    /// Used by snapshot transactions (§4.9). Chain members are immutable, so
    /// no validation is needed beyond the initial consistent read of the head.
    pub fn snapshot_version(&self, snapshot_epoch: u64) -> Option<&Record> {
        let mut cur: *const Record = self;
        while !cur.is_null() {
            // SAFETY: chain members are only freed after the snapshot
            // reclamation epoch passes, which the caller's `se_w` pin prevents.
            let rec = unsafe { &*cur };
            let word = rec.tid.read_stable();
            if word.tid().epoch() <= snapshot_epoch {
                return Some(rec);
            }
            cur = rec.prev();
        }
        None
    }
}

/// A `Send`-able wrapper around a raw record pointer, used to move record
/// pointers into garbage lists and allocation pools.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RecordPtr(pub *mut Record);

// SAFETY: a raw pointer is just an address; the reclamation protocol governs
// when it may be dereferenced or freed.
unsafe impl Send for RecordPtr {}

impl RecordPtr {
    /// The null record pointer.
    pub fn null() -> Self {
        RecordPtr(std::ptr::null_mut())
    }

    /// Whether the pointer is null.
    pub fn is_null(&self) -> bool {
        self.0.is_null()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silo_tid::Tid;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    fn word(epoch: u64, seq: u64) -> TidWord {
        TidWord::new(Tid::new(epoch, seq), false, true, false)
    }

    #[test]
    fn allocate_read_roundtrip() {
        let r = Record::allocate(b"hello world", word(1, 1), 0);
        // SAFETY: single-threaded test; freed below.
        let rec = unsafe { &*r };
        let mut out = Vec::new();
        let w = rec.read_consistent(&mut out);
        assert_eq!(out, b"hello world");
        assert_eq!(w.tid(), Tid::new(1, 1));
        assert!(w.is_latest());
        assert!(!w.is_absent());
        assert_eq!(rec.capacity(), 11);
        // SAFETY: sole owner.
        unsafe { Record::free(r) };
    }

    #[test]
    fn empty_record_and_min_capacity() {
        let r = Record::allocate(b"", word(1, 0), 32);
        // SAFETY: single-threaded test; freed below.
        let rec = unsafe { &*r };
        assert_eq!(rec.capacity(), 32);
        assert_eq!(rec.data_len(), 0);
        let mut out = vec![1, 2, 3];
        rec.read_consistent(&mut out);
        assert!(out.is_empty());
        assert!(rec.fits(&[0u8; 32]));
        assert!(!rec.fits(&[0u8; 33]));
        // SAFETY: sole owner.
        unsafe { Record::free(r) };
    }

    #[test]
    fn overwrite_in_place_updates_data_and_tid() {
        let r = Record::allocate(b"aaaaaaaa", word(1, 1), 0);
        // SAFETY: single-threaded test; freed below.
        let rec = unsafe { &*r };
        rec.tid().lock();
        // SAFETY: lock held, data fits.
        unsafe { rec.overwrite(b"bbbb") };
        rec.tid().store_and_unlock(word(2, 0));
        let mut out = Vec::new();
        let w = rec.read_consistent(&mut out);
        assert_eq!(out, b"bbbb");
        assert_eq!(w.tid(), Tid::new(2, 0));
        // SAFETY: sole owner.
        unsafe { Record::free(r) };
    }

    #[test]
    fn reinit_resets_contents_and_prev() {
        let r = Record::allocate(b"0123456789", word(1, 1), 0);
        let old = Record::allocate(b"old", word(1, 0), 0);
        // SAFETY: single-threaded test.
        unsafe { (*r).set_prev(old) };
        // SAFETY: exclusive ownership, new data fits in capacity 10.
        unsafe { Record::reinit(r, b"fresh", word(3, 0)) };
        // SAFETY: single-threaded test.
        let rec = unsafe { &*r };
        let mut out = Vec::new();
        let w = rec.read_consistent(&mut out);
        assert_eq!(out, b"fresh");
        assert_eq!(w.tid(), Tid::new(3, 0));
        assert!(rec.prev().is_null());
        // SAFETY: sole owner of both.
        unsafe {
            Record::free(r);
            Record::free(old);
        }
    }

    #[test]
    fn snapshot_version_walks_chain() {
        // Chain: head (epoch 9) -> middle (epoch 5) -> oldest (epoch 2).
        let oldest = Record::allocate(b"v-epoch2", word(2, 1), 0);
        let middle = Record::allocate(b"v-epoch5", word(5, 1), 0);
        let head = Record::allocate(b"v-epoch9", word(9, 1), 0);
        // SAFETY: single-threaded test wiring.
        unsafe {
            (*middle).set_prev(oldest);
            (*head).set_prev(middle);
        }
        // SAFETY: single-threaded test.
        let head_ref = unsafe { &*head };
        let mut out = Vec::new();

        let v = head_ref.snapshot_version(9).unwrap();
        v.read_data_unvalidated(&mut out);
        assert_eq!(out, b"v-epoch9");

        let v = head_ref.snapshot_version(7).unwrap();
        v.read_data_unvalidated(&mut out);
        assert_eq!(out, b"v-epoch5");

        let v = head_ref.snapshot_version(4).unwrap();
        v.read_data_unvalidated(&mut out);
        assert_eq!(out, b"v-epoch2");

        assert!(head_ref.snapshot_version(1).is_none());

        // SAFETY: sole owner of all three.
        unsafe {
            Record::free(head);
            Record::free(middle);
            Record::free(oldest);
        }
    }

    #[test]
    fn read_consistent_never_observes_torn_overwrites() {
        // A writer alternates two equal-length patterns; readers must only
        // ever see one of the two pure patterns when validation succeeds.
        let r = Record::allocate(&[b'A'; 64], word(1, 0), 0);
        let addr = r as usize;
        let stop = Arc::new(AtomicBool::new(false));
        let mut readers = Vec::new();
        for _ in 0..3 {
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                // SAFETY: the record outlives the threads (joined before free).
                let rec = unsafe { &*(addr as *const Record) };
                let mut out = Vec::new();
                let mut seen = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    rec.read_consistent(&mut out);
                    assert_eq!(out.len(), 64);
                    let first = out[0];
                    assert!(first == b'A' || first == b'B', "garbage byte {first}");
                    assert!(
                        out.iter().all(|&b| b == first),
                        "torn read observed: {:?}",
                        &out[..8]
                    );
                    seen += 1;
                }
                seen
            }));
        }
        // SAFETY: the record outlives the writer loop.
        let rec = unsafe { &*r };
        for i in 0..20_000u64 {
            let pattern = if i % 2 == 0 { [b'B'; 64] } else { [b'A'; 64] };
            rec.tid().lock();
            // SAFETY: lock held, data fits.
            unsafe { rec.overwrite(&pattern) };
            rec.tid().store_and_unlock(TidWord::new(
                Tid::new(1, (i % 2_000_000) + 1),
                false,
                true,
                false,
            ));
        }
        stop.store(true, Ordering::Relaxed);
        for t in readers {
            // The assertions inside the reader threads are the real check; on
            // a single-core machine a reader may observe few or no iterations.
            let _ = t.join().unwrap();
        }
        // SAFETY: all readers joined; sole owner now.
        unsafe { Record::free(r) };
    }
}
