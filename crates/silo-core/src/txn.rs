//! Serializable read/write transactions and the Silo commit protocol
//! (paper §4.4–§4.7, Figure 2).
//!
//! A transaction tracks, in thread-local storage:
//!
//! * a **read-set**: every record it read, with the TID word observed at the
//!   time of the access;
//! * a **write-set**: the new state of every record it modified (inserts,
//!   updates and deletes);
//! * a **node-set**: the index leaves whose *membership* the transaction
//!   depends on — leaves examined by range scans and leaves that proved a key
//!   absent — with the version observed at the time (§4.6, phantom
//!   protection).
//!
//! Commit runs the three-phase protocol of Figure 2:
//!
//! 1. **Phase 1** — lock every write-set record (in a deterministic global
//!    order: the record's address) by acquiring its TID-word lock bit, then
//!    take a fenced snapshot of the global epoch. That snapshot is the
//!    transaction's *serialization point*.
//! 2. **Phase 2** — validate the read-set (TID unchanged, still the latest
//!    version, not locked by another transaction) and the node-set (leaf
//!    versions unchanged). On failure release the locks and abort. On success
//!    choose the commit TID: the smallest TID that is larger than every TID
//!    observed, larger than the worker's previous TID, and in the epoch taken
//!    at the serialization point.
//! 3. **Phase 3** — install the new record values (in place when allowed,
//!    otherwise as freshly allocated versions linked for snapshot readers),
//!    writing the new TID word and releasing each lock in a single atomic
//!    store.

use std::sync::atomic::{fence, Ordering};

use silo_index::{InsertOutcome, NodeChange, NodeRef};
use silo_tid::{Tid, TidWord};

use crate::database::{CommitWrite, Table, TableId};
use crate::error::{Abort, AbortReason};
use crate::gc::Garbage;
use crate::record::{Record, RecordPtr};
use crate::worker::Worker;

/// A read-set entry: a record and the TID word observed when it was read.
#[derive(Debug, Clone, Copy)]
struct ReadEntry {
    record: *const Record,
    observed: TidWord,
}

/// A write-set entry: the record to modify and its new state.
#[derive(Debug)]
struct WriteEntry {
    table: TableId,
    key: Vec<u8>,
    record: *mut Record,
    /// `Some(bytes)` for an insert/update, `None` for a delete.
    new_value: Option<Vec<u8>>,
    /// The record is an absent placeholder created by this transaction's own
    /// insert (§4.5 "Inserts").
    is_insert: bool,
}

/// A node-set entry: an index leaf and the version under which it was
/// examined.
#[derive(Debug, Clone, Copy)]
struct NodeSetEntry {
    table: TableId,
    node: NodeRef,
    version: u64,
}

/// A serializable read/write transaction. Created by [`Worker::begin`].
///
/// Transactions follow the one-shot model (§3): the application performs all
/// of its reads and writes through the methods below and finally calls
/// [`Txn::commit`] (or [`Txn::abort`]). Dropping an uncommitted transaction
/// aborts it.
pub struct Txn<'w> {
    worker: &'w mut Worker,
    read_set: Vec<ReadEntry>,
    write_set: Vec<WriteEntry>,
    node_set: Vec<NodeSetEntry>,
    /// Absent placeholder records inserted by this transaction, kept so an
    /// abort can schedule their cleanup.
    placeholders: Vec<(TableId, Vec<u8>, RecordPtr)>,
    poisoned: Option<AbortReason>,
    /// Set once Phase 1 has acquired the write-set locks; tells the abort
    /// path whether it owns (and must release) those lock bits.
    locks_held: bool,
    finished: bool,
    scratch: Vec<u8>,
}

impl<'w> std::fmt::Debug for Txn<'w> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Txn")
            .field("reads", &self.read_set.len())
            .field("writes", &self.write_set.len())
            .field("nodes", &self.node_set.len())
            .field("poisoned", &self.poisoned)
            .finish()
    }
}

impl<'w> Txn<'w> {
    pub(crate) fn new(worker: &'w mut Worker) -> Self {
        Txn {
            worker,
            read_set: Vec::new(),
            write_set: Vec::new(),
            node_set: Vec::new(),
            placeholders: Vec::new(),
            poisoned: None,
            locks_held: false,
            finished: false,
            scratch: Vec::new(),
        }
    }

    /// The worker executing this transaction.
    pub fn worker_id(&self) -> usize {
        self.worker.id()
    }

    /// Number of records in the read-set (diagnostics).
    pub fn read_set_len(&self) -> usize {
        self.read_set.len()
    }

    /// Number of records in the write-set (diagnostics).
    pub fn write_set_len(&self) -> usize {
        self.write_set.len()
    }

    /// Number of leaves in the node-set (diagnostics).
    pub fn node_set_len(&self) -> usize {
        self.node_set.len()
    }

    fn table(&mut self, id: TableId) -> &'static Table {
        let ptr = self.worker.table_ptr(id);
        // SAFETY: the worker's table cache holds an `Arc<Table>` for the
        // worker's lifetime, which outlives the transaction borrowing it; the
        // 'static here is a private shorthand never exposed to callers.
        unsafe { &*ptr }
    }

    fn poison(&mut self, reason: AbortReason) -> Abort {
        if self.poisoned.is_none() {
            self.poisoned = Some(reason);
        }
        Abort(reason)
    }

    fn find_write(&self, table: TableId, key: &[u8]) -> Option<usize> {
        self.write_set
            .iter()
            .position(|w| w.table == table && w.key == key)
    }

    // ------------------------------------------------------------------
    // Reads
    // ------------------------------------------------------------------

    /// Reads the value of `key` in `table`, or `None` if the key is absent.
    ///
    /// Reads observe the transaction's own earlier writes. Absent keys are
    /// tracked through the node-set (missing from the index) or the read-set
    /// (absent record present in the index), so a concurrent insert is
    /// detected at commit time.
    pub fn read(&mut self, table: TableId, key: &[u8]) -> Result<Option<Vec<u8>>, Abort> {
        if let Some(reason) = self.poisoned {
            return Err(Abort(reason));
        }
        // Read-your-own-writes.
        if let Some(idx) = self.find_write(table, key) {
            return Ok(self.write_set[idx].new_value.clone());
        }
        match self.read_internal(table, key)? {
            ReadOutcome::Present(value) => Ok(Some(value)),
            ReadOutcome::Absent | ReadOutcome::Missing => Ok(None),
        }
    }

    /// Reads `key` and returns whether it exists, without copying the value.
    pub fn exists(&mut self, table: TableId, key: &[u8]) -> Result<bool, Abort> {
        Ok(self.read(table, key)?.is_some())
    }

    fn read_internal(&mut self, table_id: TableId, key: &[u8]) -> Result<ReadOutcome, Abort> {
        let retry_limit = self.worker.config().read_retry_limit;
        let table = self.table(table_id);
        let mut attempts = 0;
        loop {
            let (value, node, version) = table.tree().get_tracked(key);
            match value {
                None => {
                    self.node_set.push(NodeSetEntry {
                        table: table_id,
                        node,
                        version,
                    });
                    return Ok(ReadOutcome::Missing);
                }
                Some(ptr) => {
                    let record = ptr as *const Record;
                    // SAFETY: records referenced from the index are only freed
                    // after a grace period; our refreshed worker epoch pins them.
                    let rec = unsafe { &*record };
                    let mut buf = std::mem::take(&mut self.scratch);
                    let word = rec.read_consistent(&mut buf);
                    if !word.is_latest() {
                        // Superseded between the index lookup and the data
                        // read: retry through the index (paper §4.5).
                        self.scratch = buf;
                        attempts += 1;
                        if attempts > retry_limit {
                            return Err(self.poison(AbortReason::UnstableRead));
                        }
                        continue;
                    }
                    self.read_set.push(ReadEntry {
                        record,
                        observed: word,
                    });
                    if word.is_absent() {
                        self.scratch = buf;
                        return Ok(ReadOutcome::Absent);
                    }
                    let value = buf.clone();
                    self.scratch = buf;
                    return Ok(ReadOutcome::Present(value));
                }
            }
        }
    }

    /// Scans `[start, end)` in `table` (ascending key order), returning at
    /// most `limit` present records.
    ///
    /// Every index leaf examined is added to the node-set, which is what
    /// protects the scanned range against phantoms (§4.6). The scan observes
    /// committed state; values written earlier by this same transaction are
    /// overlaid for keys the scan returns, but keys newly inserted by this
    /// transaction are not merged into the result.
    pub fn scan(
        &mut self,
        table_id: TableId,
        start: &[u8],
        end: Option<&[u8]>,
        limit: Option<usize>,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>, Abort> {
        if let Some(reason) = self.poisoned {
            return Err(Abort(reason));
        }
        let table = self.table(table_id);
        let result = table.tree().scan(start, end, limit);
        for (node, version) in &result.nodes {
            self.node_set.push(NodeSetEntry {
                table: table_id,
                node: *node,
                version: *version,
            });
        }
        let mut out = Vec::with_capacity(result.entries.len());
        for (key, ptr) in result.entries {
            let record = ptr as *const Record;
            // SAFETY: as in `read_internal`.
            let rec = unsafe { &*record };
            let mut buf = std::mem::take(&mut self.scratch);
            let word = rec.read_consistent(&mut buf);
            if !word.is_latest() {
                // The record was superseded while scanning; the node-set (and
                // read-set of the superseding writer) will catch any real
                // conflict, so read the new version through the index.
                self.scratch = buf;
                match self.read_internal(table_id, &key)? {
                    ReadOutcome::Present(value) => out.push((key, value)),
                    ReadOutcome::Absent | ReadOutcome::Missing => {}
                }
                continue;
            }
            self.read_set.push(ReadEntry {
                record,
                observed: word,
            });
            if !word.is_absent() {
                // Overlay this transaction's own pending update, if any.
                if let Some(idx) = self.find_write(table_id, &key) {
                    if let Some(v) = &self.write_set[idx].new_value {
                        out.push((key, v.clone()));
                    }
                } else {
                    out.push((key, buf.clone()));
                }
            }
            self.scratch = buf;
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Writes
    // ------------------------------------------------------------------

    /// Writes `value` for `key`, inserting the key if it does not exist
    /// (upsert semantics).
    pub fn write(&mut self, table: TableId, key: &[u8], value: &[u8]) -> Result<(), Abort> {
        if let Some(reason) = self.poisoned {
            return Err(Abort(reason));
        }
        // Merge with an existing write-set entry.
        if let Some(idx) = self.find_write(table, key) {
            self.write_set[idx].new_value = Some(value.to_vec());
            return Ok(());
        }
        match self.read_internal(table, key)? {
            ReadOutcome::Present(_) | ReadOutcome::Absent => {
                // The read-set entry just pushed references the record.
                let record = self.read_set.last().expect("read_internal pushed").record;
                self.write_set.push(WriteEntry {
                    table,
                    key: key.to_vec(),
                    record: record as *mut Record,
                    new_value: Some(value.to_vec()),
                    is_insert: false,
                });
                Ok(())
            }
            ReadOutcome::Missing => self.insert(table, key, value),
        }
    }

    /// Updates an existing key, failing (without poisoning the transaction)
    /// if the key does not exist. Returns whether the key existed.
    pub fn update(&mut self, table: TableId, key: &[u8], value: &[u8]) -> Result<bool, Abort> {
        if let Some(reason) = self.poisoned {
            return Err(Abort(reason));
        }
        if let Some(idx) = self.find_write(table, key) {
            if self.write_set[idx].new_value.is_none() {
                return Ok(false);
            }
            self.write_set[idx].new_value = Some(value.to_vec());
            return Ok(true);
        }
        match self.read_internal(table, key)? {
            ReadOutcome::Present(_) => {
                let record = self.read_set.last().expect("read_internal pushed").record;
                self.write_set.push(WriteEntry {
                    table,
                    key: key.to_vec(),
                    record: record as *mut Record,
                    new_value: Some(value.to_vec()),
                    is_insert: false,
                });
                Ok(true)
            }
            ReadOutcome::Absent | ReadOutcome::Missing => Ok(false),
        }
    }

    /// Inserts `key → value`, aborting the transaction if the key already
    /// maps to a non-absent record (§4.5).
    pub fn insert(&mut self, table_id: TableId, key: &[u8], value: &[u8]) -> Result<(), Abort> {
        if let Some(reason) = self.poisoned {
            return Err(Abort(reason));
        }
        if let Some(idx) = self.find_write(table_id, key) {
            // Key written earlier in this transaction: a previous delete makes
            // this a plain re-insert; a previous value makes it a duplicate.
            if self.write_set[idx].new_value.is_none() {
                self.write_set[idx].new_value = Some(value.to_vec());
                return Ok(());
            }
            return Err(self.poison(AbortReason::DuplicateKey));
        }
        let table = self.table(table_id);
        // Construct the absent placeholder record before the commit protocol
        // runs, so Phase 1 has something to lock (§4.5 "Inserts"). It is
        // sized for the value so Phase 3 can normally overwrite it in place.
        let placeholder_word = TidWord::new(Tid::ZERO, false, true, true);
        let placeholder = self
            .worker
            .alloc_record_sized(&[], placeholder_word, value.len());

        match table.tree().insert_if_absent(key, placeholder as u64) {
            InsertOutcome::Exists {
                value: existing, ..
            } => {
                // The placeholder was never published; reclaim it immediately.
                // SAFETY: exclusively owned, never shared.
                unsafe { Record::free(placeholder) };
                let record = existing as *const Record;
                // SAFETY: as in `read_internal`.
                let rec = unsafe { &*record };
                let mut buf = std::mem::take(&mut self.scratch);
                let word = rec.read_consistent(&mut buf);
                self.scratch = buf;
                if word.is_latest() && word.is_absent() {
                    // The key was deleted (or is another transaction's
                    // placeholder): treat this as a write over the absent
                    // record, validated through the read-set.
                    self.read_set.push(ReadEntry {
                        record,
                        observed: word,
                    });
                    self.write_set.push(WriteEntry {
                        table: table_id,
                        key: key.to_vec(),
                        record: record as *mut Record,
                        new_value: Some(value.to_vec()),
                        is_insert: false,
                    });
                    return Ok(());
                }
                Err(self.poison(AbortReason::DuplicateKey))
            }
            InsertOutcome::Inserted { node_changes } => {
                self.apply_node_set_fixup(table_id, &node_changes)?;
                self.placeholders
                    .push((table_id, key.to_vec(), RecordPtr(placeholder)));
                self.read_set.push(ReadEntry {
                    record: placeholder,
                    observed: placeholder_word,
                });
                self.write_set.push(WriteEntry {
                    table: table_id,
                    key: key.to_vec(),
                    record: placeholder,
                    new_value: Some(value.to_vec()),
                    is_insert: true,
                });
                Ok(())
            }
        }
    }

    /// Deletes `key`, returning whether it existed. The record is marked
    /// absent at commit and unhooked from the index later by the garbage
    /// collector (§4.5 "Deletes", §4.9 "Deletions").
    pub fn delete(&mut self, table_id: TableId, key: &[u8]) -> Result<bool, Abort> {
        if let Some(reason) = self.poisoned {
            return Err(Abort(reason));
        }
        if let Some(idx) = self.find_write(table_id, key) {
            let existed = self.write_set[idx].new_value.is_some();
            if self.write_set[idx].is_insert {
                // Deleting a key inserted by this same transaction: the
                // placeholder will simply be committed as absent.
                self.write_set[idx].new_value = None;
            } else {
                self.write_set[idx].new_value = None;
            }
            return Ok(existed);
        }
        match self.read_internal(table_id, key)? {
            ReadOutcome::Present(_) => {
                let record = self.read_set.last().expect("read_internal pushed").record;
                self.write_set.push(WriteEntry {
                    table: table_id,
                    key: key.to_vec(),
                    record: record as *mut Record,
                    new_value: None,
                    is_insert: false,
                });
                Ok(true)
            }
            ReadOutcome::Absent | ReadOutcome::Missing => Ok(false),
        }
    }

    /// Applies the §4.6 node-set fix-up after an insert performed by this
    /// transaction: version entries for nodes the insert modified are
    /// advanced to the post-insert version; a mismatch means a concurrent
    /// transaction also modified the node, so we abort. Nodes created by
    /// splits inherit membership from the node they split from.
    fn apply_node_set_fixup(
        &mut self,
        table_id: TableId,
        changes: &[NodeChange],
    ) -> Result<(), Abort> {
        let mut new_entries: Vec<NodeSetEntry> = Vec::new();
        for change in changes {
            match change {
                NodeChange::Updated {
                    node,
                    old_version,
                    new_version,
                } => {
                    for entry in &mut self.node_set {
                        if entry.table == table_id && entry.node == *node {
                            if entry.version == *old_version {
                                entry.version = *new_version;
                            } else if entry.version != *new_version {
                                return Err(self.poison(AbortReason::NodeSetFixup));
                            }
                        }
                    }
                }
                NodeChange::Created {
                    node,
                    version,
                    split_from,
                } => {
                    let inherits = self
                        .node_set
                        .iter()
                        .any(|e| e.table == table_id && e.node == *split_from);
                    if inherits {
                        new_entries.push(NodeSetEntry {
                            table: table_id,
                            node: *node,
                            version: *version,
                        });
                    }
                }
            }
        }
        self.node_set.extend(new_entries);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Commit / abort
    // ------------------------------------------------------------------

    /// Runs the commit protocol (Figure 2). On success returns the commit
    /// TID; on failure the transaction has aborted and released all locks.
    pub fn commit(mut self) -> Result<Tid, Abort> {
        match self.commit_inner() {
            Ok(tid) => {
                self.worker.stats.commits += 1;
                self.finished = true;
                Ok(tid)
            }
            Err(abort) => {
                self.abort_inner(abort.0);
                self.finished = true;
                Err(abort)
            }
        }
    }

    /// Aborts the transaction explicitly.
    pub fn abort(mut self) {
        self.abort_inner(AbortReason::UserRequested);
        self.finished = true;
    }

    fn commit_inner(&mut self) -> Result<Tid, Abort> {
        if let Some(reason) = self.poisoned {
            return Err(Abort(reason));
        }

        // ---------------- Phase 1 ----------------
        // Lock the write-set in a deterministic global order (record
        // addresses) to avoid deadlock among committing transactions.
        self.write_set.sort_by_key(|w| w.record as usize);
        debug_assert!(self
            .write_set
            .windows(2)
            .all(|w| w[0].record != w[1].record));
        for entry in &self.write_set {
            // SAFETY: write-set records are pinned by our epoch.
            unsafe { (*entry.record).tid().lock() };
        }
        self.locks_held = true;

        // The fenced load of the global epoch is the serialization point.
        // On TSO hardware these are compiler fences; `SeqCst` fences keep the
        // implementation correct on weaker architectures too.
        fence(Ordering::SeqCst);
        let commit_epoch = self.worker.database().epochs().global_epoch();
        fence(Ordering::SeqCst);

        // ---------------- Phase 2 ----------------
        let mut max_observed = Tid::ZERO;
        for entry in &self.read_set {
            // SAFETY: read-set records are pinned by our epoch.
            let current = unsafe { (*entry.record).tid().load() };
            let in_write_set = self
                .write_set
                .binary_search_by_key(&(entry.record as usize), |w| w.record as usize)
                .is_ok();
            if current.tid() != entry.observed.tid()
                || !current.is_latest()
                || (current.is_locked() && !in_write_set)
            {
                return Err(Abort(AbortReason::ReadValidation));
            }
            max_observed = max_observed.max(current.tid());
        }
        for entry in &self.write_set {
            // SAFETY: we hold the lock on every write-set record.
            let current = unsafe { (*entry.record).tid().load() };
            if !entry.is_insert && !current.is_latest() {
                // A blind write raced with a concurrent supersession.
                return Err(Abort(AbortReason::ReadValidation));
            }
            max_observed = max_observed.max(current.tid());
        }
        for entry in &self.node_set {
            let table_ptr = self.worker.table_ptr(entry.table);
            // SAFETY: the worker's table cache keeps the table alive.
            let table = unsafe { &*table_ptr };
            if table.tree().node_version(entry.node) != entry.version {
                return Err(Abort(AbortReason::NodeValidation));
            }
        }

        let commit_tid = if self.worker.config().global_tid {
            self.worker
                .database()
                .global_tid_generator()
                .generate(max_observed, commit_epoch)
        } else {
            self.worker.tid_gen().generate(max_observed, commit_epoch)
        };

        // ---------------- Phase 3 ----------------
        for i in 0..self.write_set.len() {
            self.apply_write(i, commit_tid, commit_epoch);
        }
        // Every lock was released by `apply_write` (TID store + unlock are a
        // single atomic store, §4.4 Phase 3).
        self.locks_held = false;

        // Report to the durability subsystem (if installed). The log record
        // carries the TID and the table/key/value of every modification
        // (§4.10); the hook copies what it needs into the worker-local log
        // buffer.
        if let Some(hook) = self.worker.database().commit_hook() {
            let hook = std::sync::Arc::clone(hook);
            let writes: Vec<CommitWrite<'_>> = self
                .write_set
                .iter()
                .map(|w| CommitWrite {
                    table: w.table,
                    key: &w.key,
                    value: w.new_value.as_deref(),
                })
                .collect();
            hook.on_commit(self.worker.id(), commit_tid, &writes);
        }

        Ok(commit_tid)
    }

    /// Installs one write-set entry and releases its lock (Phase 3).
    fn apply_write(&mut self, index: usize, commit_tid: Tid, commit_epoch: u64) {
        let cfg_overwrite = self.worker.config().overwrite_in_place;
        let cfg_snapshots = self.worker.config().enable_snapshots;
        let snap_k = self.worker.config().epoch.snapshot_interval_epochs;

        // Copy the entry's fields out so no borrow of `self.write_set` is
        // held across the &mut self calls below.
        let (table_id, key, record, new_value, is_insert) = {
            let entry = &self.write_set[index];
            (
                entry.table,
                entry.key.clone(),
                entry.record,
                entry.new_value.clone(),
                entry.is_insert,
            )
        };
        // SAFETY: we hold the record's lock; it is pinned by our epoch.
        let rec = unsafe { &*record };
        let old_word = rec.tid().load_relaxed();
        let old_epoch = old_word.tid().epoch();
        let same_snapshot =
            silo_epoch::snap(old_epoch, snap_k) == silo_epoch::snap(commit_epoch, snap_k);
        let snap_epoch = silo_epoch::snap(commit_epoch, snap_k);
        let present_word = TidWord::new(commit_tid, false, true, false);
        let absent_word = TidWord::new(commit_tid, false, true, true);

        match new_value {
            Some(value) => {
                if is_insert {
                    // Freshly inserted placeholder: give it its real value and
                    // TID. The placeholder was sized for the value at insert
                    // time; a later same-transaction overwrite may have grown
                    // it past the capacity, in which case a new record is
                    // installed instead.
                    if rec.fits(&value) {
                        // SAFETY: lock held, fits checked.
                        unsafe { rec.overwrite(&value) };
                        rec.tid().store_and_unlock(present_word);
                        self.worker.stats.inplace_overwrites += 1;
                    } else {
                        self.install_new_version(
                            table_id,
                            &key,
                            record,
                            &value,
                            present_word,
                            old_word,
                            false,
                            commit_epoch,
                        );
                    }
                    return;
                }
                let keep_old_for_snapshot = cfg_snapshots && !same_snapshot;
                let can_overwrite = cfg_overwrite && rec.fits(&value) && !keep_old_for_snapshot;
                if can_overwrite {
                    // SAFETY: lock held, fits checked.
                    unsafe { rec.overwrite(&value) };
                    rec.tid().store_and_unlock(present_word);
                    self.worker.stats.inplace_overwrites += 1;
                } else {
                    self.install_new_version(
                        table_id,
                        &key,
                        record,
                        &value,
                        present_word,
                        old_word,
                        keep_old_for_snapshot,
                        commit_epoch,
                    );
                }
            }
            None => {
                // Delete: keep the old version reachable for snapshots when it
                // crosses a snapshot boundary, then mark the key absent and
                // schedule the two-stage cleanup (§4.5 "Deletes", §4.9
                // "Deletions").
                let keep_old_for_snapshot = cfg_snapshots && !same_snapshot && !is_insert;
                if keep_old_for_snapshot {
                    let new_head = self.install_new_version(
                        table_id,
                        &key,
                        record,
                        &[],
                        absent_word,
                        old_word,
                        true,
                        commit_epoch,
                    );
                    // `install_new_version` registered the superseded version;
                    // additionally schedule the unhook of the new absent head.
                    self.worker.defer_snapshot(
                        snap_epoch,
                        Garbage::Unhook {
                            table: table_id,
                            key,
                            record: RecordPtr(new_head),
                        },
                    );
                } else {
                    rec.tid().store_and_unlock(absent_word);
                    self.worker.defer_snapshot(
                        snap_epoch,
                        Garbage::Unhook {
                            table: table_id,
                            key,
                            record: RecordPtr(record),
                        },
                    );
                }
            }
        }
    }

    /// Installs a freshly allocated record as the new latest version for
    /// `key`, marks the old record superseded, and schedules the old version
    /// for reclamation (linked for snapshot readers when required). Returns
    /// the new record.
    #[allow(clippy::too_many_arguments)]
    fn install_new_version(
        &mut self,
        table_id: TableId,
        key: &[u8],
        old_record: *mut Record,
        value: &[u8],
        new_word: TidWord,
        old_word: TidWord,
        keep_old_for_snapshot: bool,
        commit_epoch: u64,
    ) -> *mut Record {
        let snap_k = self.worker.config().epoch.snapshot_interval_epochs;
        let new_record = self.worker.alloc_record(value, new_word);
        if keep_old_for_snapshot {
            // SAFETY: freshly allocated, not yet published.
            unsafe { (*new_record).set_prev(old_record) };
        }
        let table_ptr = self.worker.table_ptr(table_id);
        // SAFETY: the worker's table cache keeps the table alive.
        let table = unsafe { &*table_ptr };
        let updated = table.tree().update_value(key, new_record as u64);
        debug_assert!(updated, "write-set key vanished from the index");
        // Mark the old version superseded and release the lock. Readers that
        // observe the cleared latest bit retry through the index and find the
        // new record.
        // SAFETY: we hold the old record's lock.
        unsafe {
            (*old_record)
                .tid()
                .store_and_unlock(old_word.with_latest(false).with_locked(false));
        }
        if keep_old_for_snapshot {
            let snap_epoch = silo_epoch::snap(commit_epoch, snap_k);
            self.worker
                .defer_snapshot(snap_epoch, Garbage::Record(RecordPtr(old_record)));
        } else {
            self.worker
                .defer_tree(commit_epoch, Garbage::Record(RecordPtr(old_record)));
        }
        self.worker.stats.new_versions += 1;
        new_record
    }

    fn abort_inner(&mut self, reason: AbortReason) {
        // Release the write-set locks if (and only if) Phase 1 acquired them:
        // a lock bit observed on these records in any other situation belongs
        // to a different committing transaction and must not be touched.
        if self.locks_held {
            for entry in &self.write_set {
                // SAFETY: write-set records are pinned by our epoch; Phase 1
                // locked each of them and Phase 3 did not run.
                unsafe { (*entry.record).tid().unlock() };
            }
            self.locks_held = false;
        }
        // Register this transaction's absent placeholders for cleanup (§4.5:
        // "If the commit fails, the commit protocol registers the absent
        // record for future garbage collection.").
        let snap_epoch = {
            let epochs = self.worker.database().epochs();
            epochs.snapshot_of(epochs.global_epoch())
        };
        let placeholders = std::mem::take(&mut self.placeholders);
        for (table, key, record) in placeholders {
            self.worker
                .defer_snapshot(snap_epoch, Garbage::Unhook { table, key, record });
        }
        self.worker.stats.aborts += 1;
        self.worker.stats.abort_reasons.record(reason);
    }
}

impl<'w> Drop for Txn<'w> {
    fn drop(&mut self) {
        if !self.finished {
            self.abort_inner(self.poisoned.unwrap_or(AbortReason::UserRequested));
        }
    }
}

/// Internal classification of a record read.
enum ReadOutcome {
    /// A present record with its value.
    Present(Vec<u8>),
    /// The key maps to an absent record (deleted / placeholder).
    Absent,
    /// The key is not in the index at all.
    Missing,
}
