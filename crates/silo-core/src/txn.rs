//! Serializable read/write transactions and the Silo commit protocol
//! (paper §4.4–§4.7, Figure 2).
//!
//! A transaction tracks, in worker-local storage:
//!
//! * a **read-set**: every record it read, with the TID word observed at the
//!   time of the access;
//! * a **write-set**: the new state of every record it modified (inserts,
//!   updates and deletes);
//! * a **node-set**: the index leaves whose *membership* the transaction
//!   depends on — leaves examined by range scans and leaves that proved a key
//!   absent — with the version observed at the time (§4.6, phantom
//!   protection).
//!
//! All of that state lives in a [`TxnContext`] owned by the [`Worker`] and
//! *reused* across transactions: `begin` hands the context to the new
//! transaction, commit/abort clear it (retaining capacity) and hand it back.
//! Write-set keys and values are copied into the context's bump [`Arena`]
//! rather than individually heap-allocated. Together with the worker's record
//! pool this makes the steady-state hot path allocation-free, which is the
//! point of the paper's per-core memory pools (§4.8).
//!
//! Commit runs the three-phase protocol of Figure 2:
//!
//! 1. **Phase 1** — lock every write-set record (in a deterministic global
//!    order: the record's address) by acquiring its TID-word lock bit, then
//!    take a fenced snapshot of the global epoch. That snapshot is the
//!    transaction's *serialization point*.
//! 2. **Phase 2** — validate the read-set (TID unchanged, still the latest
//!    version, not locked by another transaction) and the node-set (leaf
//!    versions unchanged). On failure release the locks and abort. On success
//!    choose the commit TID: the smallest TID that is larger than every TID
//!    observed, larger than the worker's previous TID, and in the epoch taken
//!    at the serialization point.
//! 3. **Phase 3** — install the new record values (in place when allowed,
//!    otherwise as freshly allocated versions linked for snapshot readers),
//!    writing the new TID word and releasing each lock in a single atomic
//!    store. The durability hook then serializes the write-set straight from
//!    the arena-backed entries into the worker's log buffer — no intermediate
//!    clone of keys or values.

use std::sync::atomic::{fence, Ordering};

use silo_index::{InsertOutcome, NodeChange, NodeRef};
use silo_tid::{Tid, TidWord};

use crate::arena::{Arena, ArenaSlice};
use crate::database::{CommitWrite, CommitWrites, Table, TableId};
use crate::error::{Abort, AbortReason};
use crate::gc::Garbage;
use crate::record::{Record, RecordPtr};
use crate::worker::Worker;

/// A read-set entry: a record and the TID word observed when it was read.
#[derive(Debug, Clone, Copy)]
struct ReadEntry {
    record: *const Record,
    observed: TidWord,
}

/// A write-set entry: the record to modify and its new state. Key and value
/// bytes live in the transaction's arena, so the entry is plain-old-data and
/// cheap to copy out during Phase 3.
#[derive(Debug, Clone, Copy)]
struct WriteEntry {
    table: TableId,
    key: ArenaSlice,
    record: *mut Record,
    /// `Some(bytes)` for an insert/update, `None` for a delete.
    new_value: Option<ArenaSlice>,
    /// The record is an absent placeholder created by this transaction's own
    /// insert (§4.5 "Inserts").
    is_insert: bool,
}

/// A node-set entry: an index leaf and the version under which it was
/// examined.
#[derive(Debug, Clone, Copy)]
struct NodeSetEntry {
    table: TableId,
    node: NodeRef,
    version: u64,
}

/// The reusable per-worker transaction state: read/write/node sets, insert
/// placeholders, a scratch buffer for consistent record reads, and the bump
/// arena backing write-set keys and values.
///
/// A worker owns exactly one context. [`Worker::begin`] moves it into the new
/// [`Txn`]; the transaction's drop clears every set (retaining capacity),
/// rewinds the arena, and moves it back — so after warm-up, beginning and
/// finishing transactions performs no heap allocation.
#[derive(Debug, Default)]
pub(crate) struct TxnContext {
    read_set: Vec<ReadEntry>,
    write_set: Vec<WriteEntry>,
    node_set: Vec<NodeSetEntry>,
    /// Absent placeholder records inserted by this transaction, kept so an
    /// abort can schedule their cleanup.
    placeholders: Vec<(TableId, ArenaSlice, RecordPtr)>,
    scratch: Vec<u8>,
    arena: Arena,
}

// SAFETY: between transactions every set is empty and the arena holds only
// plain bytes, so moving the context (with its owning Worker) to another
// thread is sound. While a transaction is live the context is pinned by the
// transaction's exclusive borrow of the worker and cannot move at all.
unsafe impl Send for TxnContext {}

impl TxnContext {
    /// Clears all transaction state, retaining allocated capacity, and
    /// rewinds the arena.
    fn reset(&mut self) {
        self.read_set.clear();
        self.write_set.clear();
        self.node_set.clear();
        self.placeholders.clear();
        self.scratch.clear();
        self.arena.reset();
    }

    /// Cumulative global-allocator hits made by the arena (stats).
    pub(crate) fn arena_chunk_allocs(&self) -> u64 {
        self.arena.chunk_allocs
    }
}

/// A serializable read/write transaction. Created by [`Worker::begin`].
///
/// Transactions follow the one-shot model (§3): the application performs all
/// of its reads and writes through the methods below and finally calls
/// [`Txn::commit`] (or [`Txn::abort`]). Dropping an uncommitted transaction
/// aborts it.
///
/// A live transaction is pinned to the thread that began it (it holds raw
/// record and arena pointers), so `Txn` is `!Send`:
///
/// ```compile_fail
/// fn assert_send<T: Send>(_: T) {}
/// let db = silo_core::Database::open(silo_core::SiloConfig::for_testing());
/// let mut w = db.register_worker();
/// let txn = w.begin();
/// assert_send(txn); // must not compile
/// ```
pub struct Txn<'w> {
    worker: &'w mut Worker,
    ctx: TxnContext,
    poisoned: Option<AbortReason>,
    /// Set once Phase 1 has acquired the write-set locks; tells the abort
    /// path whether it owns (and must release) those lock bits.
    locks_held: bool,
    finished: bool,
    /// Whether this transaction records its reads/writes into the worker's
    /// history session. Decided once at `begin` (one relaxed load of the
    /// recorder's enabled flag) so the per-read check is a plain bool — and
    /// constant `false` when no recorder is installed.
    recording: bool,
    /// Keeps `Txn` `!Send`, as it was when the raw-pointer sets lived inline:
    /// a live transaction holds record and arena pointers and must stay on
    /// the thread that began it (`TxnContext`'s `Send` impl is only argued
    /// for the empty, between-transactions state).
    _not_send: std::marker::PhantomData<*mut ()>,
}

impl<'w> std::fmt::Debug for Txn<'w> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Txn")
            .field("reads", &self.ctx.read_set.len())
            .field("writes", &self.ctx.write_set.len())
            .field("nodes", &self.ctx.node_set.len())
            .field("poisoned", &self.poisoned)
            .finish()
    }
}

impl<'w> Txn<'w> {
    pub(crate) fn new(worker: &'w mut Worker) -> Self {
        let ctx = std::mem::take(&mut worker.ctx);
        let recording = worker.history.as_mut().is_some_and(|h| h.begin_txn());
        Txn {
            worker,
            ctx,
            poisoned: None,
            locks_held: false,
            finished: false,
            recording,
            _not_send: std::marker::PhantomData,
        }
    }

    /// The worker executing this transaction.
    pub fn worker_id(&self) -> usize {
        self.worker.id()
    }

    /// Number of records in the read-set (diagnostics).
    pub fn read_set_len(&self) -> usize {
        self.ctx.read_set.len()
    }

    /// Number of records in the write-set (diagnostics).
    pub fn write_set_len(&self) -> usize {
        self.ctx.write_set.len()
    }

    /// Number of leaves in the node-set (diagnostics).
    pub fn node_set_len(&self) -> usize {
        self.ctx.node_set.len()
    }

    /// Number of insert placeholders created by this transaction
    /// (diagnostics).
    pub fn placeholder_len(&self) -> usize {
        self.ctx.placeholders.len()
    }

    fn table(&mut self, id: TableId) -> &'static Table {
        let ptr = self.worker.table_ptr(id);
        // SAFETY: the worker's table cache holds an `Arc<Table>` for the
        // worker's lifetime, which outlives the transaction borrowing it; the
        // 'static here is a private shorthand never exposed to callers.
        unsafe { &*ptr }
    }

    fn poison(&mut self, reason: AbortReason) -> Abort {
        if self.poisoned.is_none() {
            self.poisoned = Some(reason);
        }
        Abort(reason)
    }

    /// Records one read into the worker's history session (when this
    /// transaction is recording). `observed` is the raw TID of the version
    /// the read returned; `0` stands for the initial (never-written) version,
    /// recorded for keys missing from the index.
    #[inline]
    fn record_read(&mut self, table: TableId, key: &[u8], observed: u64) {
        if self.recording {
            if let Some(history) = self.worker.history.as_mut() {
                history.record_read(table, key, observed);
            }
        }
    }

    fn find_write(&self, table: TableId, key: &[u8]) -> Option<usize> {
        self.ctx.write_set.iter().position(|w| {
            // SAFETY: write-set keys live in this transaction's arena, which
            // is only reset after the transaction finishes.
            w.table == table && unsafe { w.key.as_slice() } == key
        })
    }

    // ------------------------------------------------------------------
    // Reads
    // ------------------------------------------------------------------

    /// Reads the value of `key` in `table`, or `None` if the key is absent.
    ///
    /// Reads observe the transaction's own earlier writes. Absent keys are
    /// tracked through the node-set (missing from the index) or the read-set
    /// (absent record present in the index), so a concurrent insert is
    /// detected at commit time.
    ///
    /// Allocates a fresh `Vec` for the returned value; hot paths that reuse a
    /// buffer should prefer [`Txn::read_into`].
    pub fn read(&mut self, table: TableId, key: &[u8]) -> Result<Option<Vec<u8>>, Abort> {
        let mut out = Vec::new();
        Ok(self.read_into(table, key, &mut out)?.then_some(out))
    }

    /// Reads the value of `key` in `table` into `out`, returning whether the
    /// key was present. `out` is cleared first; on `Ok(false)` it is left
    /// empty. This is the allocation-free read path: a warmed caller buffer
    /// makes the whole read touch no allocator.
    pub fn read_into(
        &mut self,
        table: TableId,
        key: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<bool, Abort> {
        if let Some(reason) = self.poisoned {
            return Err(Abort(reason));
        }
        out.clear();
        // Read-your-own-writes.
        if let Some(idx) = self.find_write(table, key) {
            return Ok(match self.ctx.write_set[idx].new_value {
                Some(value) => {
                    // SAFETY: arena slice valid until the txn finishes.
                    out.extend_from_slice(unsafe { value.as_slice() });
                    true
                }
                None => false,
            });
        }
        match self.read_internal(table, key, out)? {
            ReadOutcome::Present => Ok(true),
            ReadOutcome::Absent | ReadOutcome::Missing => {
                out.clear();
                Ok(false)
            }
        }
    }

    /// Reads `key` and returns whether it exists, without copying the value
    /// out of the transaction.
    pub fn exists(&mut self, table: TableId, key: &[u8]) -> Result<bool, Abort> {
        let mut buf = std::mem::take(&mut self.ctx.scratch);
        let result = self.read_into(table, key, &mut buf);
        self.ctx.scratch = buf;
        result
    }

    /// The §4.5 record-read protocol against the index. On
    /// [`ReadOutcome::Present`] the value bytes are in `buf`; in every case
    /// the read has been registered in the read-set or node-set as required
    /// for commit-time validation.
    fn read_internal(
        &mut self,
        table_id: TableId,
        key: &[u8],
        buf: &mut Vec<u8>,
    ) -> Result<ReadOutcome, Abort> {
        let retry_limit = self.worker.config().read_retry_limit;
        let table = self.table(table_id);
        let mut attempts = 0;
        loop {
            let (value, node, version) = table.tree().get_tracked(key);
            match value {
                None => {
                    self.ctx.node_set.push(NodeSetEntry {
                        table: table_id,
                        node,
                        version,
                    });
                    self.record_read(table_id, key, 0);
                    return Ok(ReadOutcome::Missing);
                }
                Some(ptr) => {
                    let record = ptr as *const Record;
                    // SAFETY: records referenced from the index are only freed
                    // after a grace period; our refreshed worker epoch pins them.
                    let rec = unsafe { &*record };
                    let word = rec.read_consistent(buf);
                    if !word.is_latest() {
                        // Superseded between the index lookup and the data
                        // read: retry through the index (paper §4.5).
                        attempts += 1;
                        if attempts > retry_limit {
                            return Err(self.poison(AbortReason::UnstableRead));
                        }
                        continue;
                    }
                    self.ctx.read_set.push(ReadEntry {
                        record,
                        observed: word,
                    });
                    // An absent record's TID is its deleting transaction's:
                    // exactly the version this read observed.
                    self.record_read(table_id, key, word.tid().raw());
                    if word.is_absent() {
                        return Ok(ReadOutcome::Absent);
                    }
                    return Ok(ReadOutcome::Present);
                }
            }
        }
    }

    /// Scans `[start, end)` in `table` (ascending key order), returning at
    /// most `limit` present records.
    ///
    /// Every index leaf examined is added to the node-set, which is what
    /// protects the scanned range against phantoms (§4.6). The scan observes
    /// committed state; values written earlier by this same transaction are
    /// overlaid for keys the scan returns, but keys newly inserted by this
    /// transaction are not merged into the result.
    pub fn scan(
        &mut self,
        table_id: TableId,
        start: &[u8],
        end: Option<&[u8]>,
        limit: Option<usize>,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>, Abort> {
        if let Some(reason) = self.poisoned {
            return Err(Abort(reason));
        }
        let table = self.table(table_id);
        let result = table.tree().scan(start, end, limit);
        for (node, version) in &result.nodes {
            self.ctx.node_set.push(NodeSetEntry {
                table: table_id,
                node: *node,
                version: *version,
            });
        }
        let mut out = Vec::with_capacity(result.entries.len());
        let mut buf = std::mem::take(&mut self.ctx.scratch);
        for (key, ptr) in result.entries {
            let record = ptr as *const Record;
            // SAFETY: as in `read_internal`.
            let rec = unsafe { &*record };
            let word = rec.read_consistent(&mut buf);
            if !word.is_latest() {
                // The record was superseded while scanning; the node-set (and
                // read-set of the superseding writer) will catch any real
                // conflict, so read the new version through the index.
                match self.read_internal(table_id, &key, &mut buf) {
                    Ok(ReadOutcome::Present) => out.push((key, buf.clone())),
                    Ok(ReadOutcome::Absent | ReadOutcome::Missing) => {}
                    Err(abort) => {
                        self.ctx.scratch = buf;
                        return Err(abort);
                    }
                }
                continue;
            }
            self.ctx.read_set.push(ReadEntry {
                record,
                observed: word,
            });
            self.record_read(table_id, &key, word.tid().raw());
            if !word.is_absent() {
                // Overlay this transaction's own pending update, if any.
                if let Some(idx) = self.find_write(table_id, &key) {
                    if let Some(v) = self.ctx.write_set[idx].new_value {
                        // SAFETY: arena slice valid until the txn finishes.
                        out.push((key, unsafe { v.as_slice() }.to_vec()));
                    }
                } else {
                    out.push((key, buf.clone()));
                }
            }
        }
        self.ctx.scratch = buf;
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Writes
    // ------------------------------------------------------------------

    /// Writes `value` for `key`, inserting the key if it does not exist
    /// (upsert semantics).
    pub fn write(&mut self, table: TableId, key: &[u8], value: &[u8]) -> Result<(), Abort> {
        if let Some(reason) = self.poisoned {
            return Err(Abort(reason));
        }
        // Merge with an existing write-set entry.
        if let Some(idx) = self.find_write(table, key) {
            self.ctx.write_set[idx].new_value = Some(self.ctx.arena.alloc(value));
            return Ok(());
        }
        let mut buf = std::mem::take(&mut self.ctx.scratch);
        let outcome = self.read_internal(table, key, &mut buf);
        self.ctx.scratch = buf;
        match outcome? {
            ReadOutcome::Present | ReadOutcome::Absent => {
                // The read-set entry just pushed references the record.
                let record = self
                    .ctx
                    .read_set
                    .last()
                    .expect("read_internal pushed")
                    .record;
                let entry = WriteEntry {
                    table,
                    key: self.ctx.arena.alloc(key),
                    record: record as *mut Record,
                    new_value: Some(self.ctx.arena.alloc(value)),
                    is_insert: false,
                };
                self.ctx.write_set.push(entry);
                Ok(())
            }
            ReadOutcome::Missing => self.insert(table, key, value),
        }
    }

    /// Updates an existing key, failing (without poisoning the transaction)
    /// if the key does not exist. Returns whether the key existed.
    pub fn update(&mut self, table: TableId, key: &[u8], value: &[u8]) -> Result<bool, Abort> {
        if let Some(reason) = self.poisoned {
            return Err(Abort(reason));
        }
        if let Some(idx) = self.find_write(table, key) {
            if self.ctx.write_set[idx].new_value.is_none() {
                return Ok(false);
            }
            self.ctx.write_set[idx].new_value = Some(self.ctx.arena.alloc(value));
            return Ok(true);
        }
        let mut buf = std::mem::take(&mut self.ctx.scratch);
        let outcome = self.read_internal(table, key, &mut buf);
        self.ctx.scratch = buf;
        match outcome? {
            ReadOutcome::Present => {
                let record = self
                    .ctx
                    .read_set
                    .last()
                    .expect("read_internal pushed")
                    .record;
                let entry = WriteEntry {
                    table,
                    key: self.ctx.arena.alloc(key),
                    record: record as *mut Record,
                    new_value: Some(self.ctx.arena.alloc(value)),
                    is_insert: false,
                };
                self.ctx.write_set.push(entry);
                Ok(true)
            }
            ReadOutcome::Absent | ReadOutcome::Missing => Ok(false),
        }
    }

    /// Inserts `key → value`, aborting the transaction if the key already
    /// maps to a non-absent record (§4.5).
    pub fn insert(&mut self, table_id: TableId, key: &[u8], value: &[u8]) -> Result<(), Abort> {
        if let Some(reason) = self.poisoned {
            return Err(Abort(reason));
        }
        if let Some(idx) = self.find_write(table_id, key) {
            // Key written earlier in this transaction: a previous delete makes
            // this a plain re-insert; a previous value makes it a duplicate.
            if self.ctx.write_set[idx].new_value.is_none() {
                self.ctx.write_set[idx].new_value = Some(self.ctx.arena.alloc(value));
                return Ok(());
            }
            return Err(self.poison(AbortReason::DuplicateKey));
        }
        let table = self.table(table_id);
        // Construct the absent placeholder record before the commit protocol
        // runs, so Phase 1 has something to lock (§4.5 "Inserts"). It is
        // sized for the value so Phase 3 can normally overwrite it in place.
        let placeholder_word = TidWord::new(Tid::ZERO, false, true, true);
        let placeholder = self
            .worker
            .alloc_record_sized(&[], placeholder_word, value.len());

        match table.tree().insert_if_absent(key, placeholder as u64) {
            InsertOutcome::Exists {
                value: existing, ..
            } => {
                // The placeholder was never published; hand it straight back
                // to the worker's pool.
                // SAFETY: exclusively owned, never shared.
                unsafe { self.worker.pool.recycle(RecordPtr(placeholder)) };
                let record = existing as *const Record;
                // SAFETY: as in `read_internal`.
                let rec = unsafe { &*record };
                let mut buf = std::mem::take(&mut self.ctx.scratch);
                let word = rec.read_consistent(&mut buf);
                self.ctx.scratch = buf;
                if word.is_latest() && word.is_absent() {
                    // The key was deleted (or is another transaction's
                    // placeholder): treat this as a write over the absent
                    // record, validated through the read-set.
                    self.ctx.read_set.push(ReadEntry {
                        record,
                        observed: word,
                    });
                    // The insert's implicit absence check observed the
                    // delete's version (or 0 for a foreign placeholder).
                    self.record_read(table_id, key, word.tid().raw());
                    let entry = WriteEntry {
                        table: table_id,
                        key: self.ctx.arena.alloc(key),
                        record: record as *mut Record,
                        new_value: Some(self.ctx.arena.alloc(value)),
                        is_insert: false,
                    };
                    self.ctx.write_set.push(entry);
                    return Ok(());
                }
                Err(self.poison(AbortReason::DuplicateKey))
            }
            InsertOutcome::Inserted { node_changes } => {
                self.apply_node_set_fixup(table_id, &node_changes)?;
                let key_slice = self.ctx.arena.alloc(key);
                self.ctx
                    .placeholders
                    .push((table_id, key_slice, RecordPtr(placeholder)));
                self.ctx.read_set.push(ReadEntry {
                    record: placeholder,
                    observed: placeholder_word,
                });
                // A fresh insert's implicit absence check observed the
                // initial (never-written) version.
                self.record_read(table_id, key, 0);
                let entry = WriteEntry {
                    table: table_id,
                    key: key_slice,
                    record: placeholder,
                    new_value: Some(self.ctx.arena.alloc(value)),
                    is_insert: true,
                };
                self.ctx.write_set.push(entry);
                Ok(())
            }
        }
    }

    /// Deletes `key`, returning whether it existed. The record is marked
    /// absent at commit and unhooked from the index later by the garbage
    /// collector (§4.5 "Deletes", §4.9 "Deletions").
    pub fn delete(&mut self, table_id: TableId, key: &[u8]) -> Result<bool, Abort> {
        if let Some(reason) = self.poisoned {
            return Err(Abort(reason));
        }
        if let Some(idx) = self.find_write(table_id, key) {
            let existed = self.ctx.write_set[idx].new_value.is_some();
            // Whether the key came from an earlier insert or write in this
            // same transaction, committing the entry as valueless marks the
            // record absent.
            self.ctx.write_set[idx].new_value = None;
            return Ok(existed);
        }
        let mut buf = std::mem::take(&mut self.ctx.scratch);
        let outcome = self.read_internal(table_id, key, &mut buf);
        self.ctx.scratch = buf;
        match outcome? {
            ReadOutcome::Present => {
                let record = self
                    .ctx
                    .read_set
                    .last()
                    .expect("read_internal pushed")
                    .record;
                let entry = WriteEntry {
                    table: table_id,
                    key: self.ctx.arena.alloc(key),
                    record: record as *mut Record,
                    new_value: None,
                    is_insert: false,
                };
                self.ctx.write_set.push(entry);
                Ok(true)
            }
            ReadOutcome::Absent | ReadOutcome::Missing => Ok(false),
        }
    }

    /// Applies the §4.6 node-set fix-up after an insert performed by this
    /// transaction: version entries for nodes the insert modified are
    /// advanced to the post-insert version; a mismatch means a concurrent
    /// transaction also modified the node, so we abort. Nodes created by
    /// splits inherit membership from the node they split from.
    fn apply_node_set_fixup(
        &mut self,
        table_id: TableId,
        changes: &[NodeChange],
    ) -> Result<(), Abort> {
        let mut new_entries: Vec<NodeSetEntry> = Vec::new();
        for change in changes {
            match change {
                NodeChange::Updated {
                    node,
                    old_version,
                    new_version,
                } => {
                    for entry in &mut self.ctx.node_set {
                        if entry.table == table_id && entry.node == *node {
                            if entry.version == *old_version {
                                entry.version = *new_version;
                            } else if entry.version != *new_version {
                                return Err(self.poison(AbortReason::NodeSetFixup));
                            }
                        }
                    }
                }
                NodeChange::Created {
                    node,
                    version,
                    split_from,
                } => {
                    let inherits = self
                        .ctx
                        .node_set
                        .iter()
                        .any(|e| e.table == table_id && e.node == *split_from);
                    if inherits {
                        new_entries.push(NodeSetEntry {
                            table: table_id,
                            node: *node,
                            version: *version,
                        });
                    }
                }
            }
        }
        self.ctx.node_set.extend(new_entries);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Commit / abort
    // ------------------------------------------------------------------

    /// Runs the commit protocol (Figure 2). On success returns the commit
    /// TID; on failure the transaction has aborted and released all locks.
    pub fn commit(mut self) -> Result<Tid, Abort> {
        match self.commit_inner() {
            Ok(tid) => {
                self.worker.stats.commits += 1;
                self.finished = true;
                Ok(tid)
            }
            Err(abort) => {
                self.abort_inner(abort.0);
                self.finished = true;
                Err(abort)
            }
        }
    }

    /// Aborts the transaction explicitly.
    pub fn abort(mut self) {
        self.abort_inner(AbortReason::UserRequested);
        self.finished = true;
    }

    fn commit_inner(&mut self) -> Result<Tid, Abort> {
        if let Some(reason) = self.poisoned {
            return Err(Abort(reason));
        }

        // ---------------- Phase 1 ----------------
        // Lock the write-set in a deterministic global order (record
        // addresses) to avoid deadlock among committing transactions. The
        // unstable sort never allocates (a stable sort's merge buffer would).
        self.ctx
            .write_set
            .sort_unstable_by_key(|w| w.record as usize);
        debug_assert!(self
            .ctx
            .write_set
            .windows(2)
            .all(|w| w[0].record != w[1].record));
        for entry in &self.ctx.write_set {
            // SAFETY: write-set records are pinned by our epoch.
            unsafe { (*entry.record).tid().lock() };
        }
        self.locks_held = true;

        // The fenced load of the global epoch is the serialization point.
        // On TSO hardware these are compiler fences; `SeqCst` fences keep the
        // implementation correct on weaker architectures too.
        fence(Ordering::SeqCst);
        let commit_epoch = self.worker.database().epochs().global_epoch();
        fence(Ordering::SeqCst);

        // ---------------- Phase 2 ----------------
        let mut max_observed = Tid::ZERO;
        for entry in &self.ctx.read_set {
            // SAFETY: read-set records are pinned by our epoch.
            let current = unsafe { (*entry.record).tid().load() };
            let in_write_set = self
                .ctx
                .write_set
                .binary_search_by_key(&(entry.record as usize), |w| w.record as usize)
                .is_ok();
            if current.tid() != entry.observed.tid()
                || !current.is_latest()
                || (current.is_locked() && !in_write_set)
            {
                return Err(Abort(AbortReason::ReadValidation));
            }
            max_observed = max_observed.max(current.tid());
        }
        for entry in &self.ctx.write_set {
            // SAFETY: we hold the lock on every write-set record.
            let current = unsafe { (*entry.record).tid().load() };
            if !entry.is_insert && !current.is_latest() {
                // A blind write raced with a concurrent supersession.
                return Err(Abort(AbortReason::ReadValidation));
            }
            max_observed = max_observed.max(current.tid());
        }
        for entry in &self.ctx.node_set {
            let table_ptr = self.worker.table_ptr(entry.table);
            // SAFETY: the worker's table cache keeps the table alive.
            let table = unsafe { &*table_ptr };
            if table.tree().node_version(entry.node) != entry.version {
                return Err(Abort(AbortReason::NodeValidation));
            }
        }

        let commit_tid = if self.worker.config().global_tid {
            self.worker
                .database()
                .global_tid_generator()
                .generate(max_observed, commit_epoch)
        } else {
            self.worker.tid_gen().generate(max_observed, commit_epoch)
        };

        // ---------------- Phase 3 ----------------
        for i in 0..self.ctx.write_set.len() {
            self.apply_write(i, commit_tid, commit_epoch);
        }
        // Every lock was released by `apply_write` (TID store + unlock are a
        // single atomic store, §4.4 Phase 3).
        self.locks_held = false;

        // Report to the durability subsystem (if installed). The log record
        // carries the TID and the table/key/value of every modification
        // (§4.10); the hook serializes directly from the arena-backed
        // write-set into the worker's log buffer — nothing is cloned here.
        if let Some(hook) = self.worker.database().commit_hook() {
            hook.on_commit(
                self.worker.id(),
                commit_tid,
                &WriteSetView(&self.ctx.write_set),
            );
        }

        // Close the recorded transaction: writes (keys still alive in the
        // arena) plus the commit TID. Reads were recorded as they happened.
        if self.recording {
            if let Some(history) = self.worker.history.as_mut() {
                for entry in &self.ctx.write_set {
                    // SAFETY: arena slices are valid until the txn finishes.
                    history.record_write(
                        entry.table,
                        unsafe { entry.key.as_slice() },
                        entry.new_value.is_none(),
                    );
                }
                history.finish_txn(Some(commit_tid), true);
            }
            self.recording = false;
        }

        Ok(commit_tid)
    }

    /// Installs one write-set entry and releases its lock (Phase 3).
    fn apply_write(&mut self, index: usize, commit_tid: Tid, commit_epoch: u64) {
        let cfg_overwrite = self.worker.config().overwrite_in_place;
        let cfg_snapshots = self.worker.config().enable_snapshots;
        let snap_k = self.worker.config().epoch.snapshot_interval_epochs;

        // The entry is plain-old-data (key/value are arena slices): copy it
        // out so no borrow of the write-set is held across the &mut self
        // calls below. The arena is not touched again until the transaction
        // finishes, so the slices stay valid throughout.
        let WriteEntry {
            table: table_id,
            key,
            record,
            new_value,
            is_insert,
        } = self.ctx.write_set[index];
        // SAFETY: we hold the record's lock; it is pinned by our epoch.
        let rec = unsafe { &*record };
        let old_word = rec.tid().load_relaxed();
        let old_epoch = old_word.tid().epoch();
        let same_snapshot =
            silo_epoch::snap(old_epoch, snap_k) == silo_epoch::snap(commit_epoch, snap_k);
        let snap_epoch = silo_epoch::snap(commit_epoch, snap_k);
        let present_word = TidWord::new(commit_tid, false, true, false);
        let absent_word = TidWord::new(commit_tid, false, true, true);

        match new_value {
            Some(value) => {
                // SAFETY: arena slices are valid until the txn finishes.
                let value = unsafe { value.as_slice() };
                // SAFETY: as above.
                let key = unsafe { key.as_slice() };
                if is_insert {
                    // Freshly inserted placeholder: give it its real value and
                    // TID. The placeholder was sized for the value at insert
                    // time; a later same-transaction overwrite may have grown
                    // it past the capacity, in which case a new record is
                    // installed instead.
                    if rec.fits(value) {
                        // SAFETY: lock held, fits checked.
                        unsafe { rec.overwrite(value) };
                        rec.tid().store_and_unlock(present_word);
                        self.worker.stats.inplace_overwrites += 1;
                    } else {
                        self.install_new_version(
                            table_id,
                            key,
                            record,
                            value,
                            present_word,
                            old_word,
                            false,
                            commit_epoch,
                        );
                    }
                    return;
                }
                let keep_old_for_snapshot = cfg_snapshots && !same_snapshot;
                let can_overwrite = cfg_overwrite && rec.fits(value) && !keep_old_for_snapshot;
                if can_overwrite {
                    // SAFETY: lock held, fits checked.
                    unsafe { rec.overwrite(value) };
                    rec.tid().store_and_unlock(present_word);
                    self.worker.stats.inplace_overwrites += 1;
                } else {
                    self.install_new_version(
                        table_id,
                        key,
                        record,
                        value,
                        present_word,
                        old_word,
                        keep_old_for_snapshot,
                        commit_epoch,
                    );
                }
            }
            None => {
                // Delete: keep the old version reachable for snapshots when it
                // crosses a snapshot boundary, then mark the key absent and
                // schedule the two-stage cleanup (§4.5 "Deletes", §4.9
                // "Deletions"). The Unhook garbage outlives the transaction,
                // so the key is copied out of the arena here — deletes are the
                // one write kind that pays an owned-key allocation.
                // SAFETY: arena slice valid until the txn finishes.
                let owned_key = unsafe { key.as_slice() }.to_vec();
                let keep_old_for_snapshot = cfg_snapshots && !same_snapshot && !is_insert;
                if keep_old_for_snapshot {
                    let new_head = self.install_new_version(
                        table_id,
                        &owned_key,
                        record,
                        &[],
                        absent_word,
                        old_word,
                        true,
                        commit_epoch,
                    );
                    // `install_new_version` registered the superseded version;
                    // additionally schedule the unhook of the new absent head.
                    self.worker.defer_snapshot(
                        snap_epoch,
                        Garbage::Unhook {
                            table: table_id,
                            key: owned_key,
                            record: RecordPtr(new_head),
                        },
                    );
                } else {
                    rec.tid().store_and_unlock(absent_word);
                    self.worker.defer_snapshot(
                        snap_epoch,
                        Garbage::Unhook {
                            table: table_id,
                            key: owned_key,
                            record: RecordPtr(record),
                        },
                    );
                }
            }
        }
    }

    /// Installs a freshly allocated record as the new latest version for
    /// `key`, marks the old record superseded, and schedules the old version
    /// for reclamation (linked for snapshot readers when required). Returns
    /// the new record.
    #[allow(clippy::too_many_arguments)]
    fn install_new_version(
        &mut self,
        table_id: TableId,
        key: &[u8],
        old_record: *mut Record,
        value: &[u8],
        new_word: TidWord,
        old_word: TidWord,
        keep_old_for_snapshot: bool,
        commit_epoch: u64,
    ) -> *mut Record {
        let snap_k = self.worker.config().epoch.snapshot_interval_epochs;
        let new_record = self.worker.alloc_record(value, new_word);
        if keep_old_for_snapshot {
            // SAFETY: freshly allocated, not yet published.
            unsafe { (*new_record).set_prev(old_record) };
        }
        let table_ptr = self.worker.table_ptr(table_id);
        // SAFETY: the worker's table cache keeps the table alive.
        let table = unsafe { &*table_ptr };
        let updated = table.tree().update_value(key, new_record as u64);
        debug_assert!(updated, "write-set key vanished from the index");
        // Mark the old version superseded and release the lock. Readers that
        // observe the cleared latest bit retry through the index and find the
        // new record.
        // SAFETY: we hold the old record's lock.
        unsafe {
            (*old_record)
                .tid()
                .store_and_unlock(old_word.with_latest(false).with_locked(false));
        }
        if keep_old_for_snapshot {
            let snap_epoch = silo_epoch::snap(commit_epoch, snap_k);
            self.worker
                .defer_snapshot(snap_epoch, Garbage::Record(RecordPtr(old_record)));
        } else {
            self.worker
                .defer_tree(commit_epoch, Garbage::Record(RecordPtr(old_record)));
        }
        self.worker.stats.new_versions += 1;
        new_record
    }

    fn abort_inner(&mut self, reason: AbortReason) {
        // Release the write-set locks if (and only if) Phase 1 acquired them:
        // a lock bit observed on these records in any other situation belongs
        // to a different committing transaction and must not be touched.
        if self.locks_held {
            for entry in &self.ctx.write_set {
                // SAFETY: write-set records are pinned by our epoch; Phase 1
                // locked each of them and Phase 3 did not run.
                unsafe { (*entry.record).tid().unlock() };
            }
            self.locks_held = false;
        }
        // Register this transaction's absent placeholders for cleanup (§4.5:
        // "If the commit fails, the commit protocol registers the absent
        // record for future garbage collection.").
        let snap_epoch = {
            let epochs = self.worker.database().epochs();
            epochs.snapshot_of(epochs.global_epoch())
        };
        for (table, key, record) in self.ctx.placeholders.drain(..) {
            // The Unhook garbage outlives the transaction; copy the key out
            // of the arena.
            // SAFETY: arena slices are valid until the txn finishes.
            let key = unsafe { key.as_slice() }.to_vec();
            self.worker
                .defer_snapshot(snap_epoch, Garbage::Unhook { table, key, record });
        }
        // Close the recorded transaction as aborted, keeping its attempted
        // writes for diagnostics (the checker ignores aborted transactions).
        if self.recording {
            if let Some(history) = self.worker.history.as_mut() {
                for entry in &self.ctx.write_set {
                    // SAFETY: arena slices are valid until the txn finishes.
                    history.record_write(
                        entry.table,
                        unsafe { entry.key.as_slice() },
                        entry.new_value.is_none(),
                    );
                }
                history.finish_txn(None, false);
            }
            self.recording = false;
        }
        self.worker.stats.aborts += 1;
        self.worker.stats.abort_reasons.record(reason);
    }
}

impl<'w> Drop for Txn<'w> {
    fn drop(&mut self) {
        if !self.finished {
            self.abort_inner(self.poisoned.unwrap_or(AbortReason::UserRequested));
        }
        // Clear the context (retaining capacity) and hand it back to the
        // worker for the next transaction.
        self.ctx.reset();
        self.worker.stats.arena_chunk_allocs = self.ctx.arena_chunk_allocs();
        self.worker.ctx = std::mem::take(&mut self.ctx);
    }
}

/// Borrow-based [`CommitWrites`] view over the write-set, handed to the
/// commit hook so the durability layer serializes keys and values straight
/// from the arena without any intermediate collection.
struct WriteSetView<'a>(&'a [WriteEntry]);

impl CommitWrites for WriteSetView<'_> {
    fn count(&self) -> usize {
        self.0.len()
    }

    fn for_each(&self, f: &mut dyn FnMut(CommitWrite<'_>)) {
        for w in self.0 {
            // SAFETY: arena slices are valid until the txn finishes, and the
            // hook runs strictly before that.
            f(CommitWrite {
                table: w.table,
                key: unsafe { w.key.as_slice() },
                value: w.new_value.as_ref().map(|v| unsafe { v.as_slice() }),
            });
        }
    }
}

/// Internal classification of a record read. On `Present` the value bytes
/// are in the buffer passed to [`Txn::read_internal`].
enum ReadOutcome {
    /// A present record (value copied into the caller's buffer).
    Present,
    /// The key maps to an absent record (deleted / placeholder).
    Absent,
    /// The key is not in the index at all.
    Missing,
}
