//! Abort reasons and error types.

use std::fmt;

/// Why a transaction aborted.
///
/// Silo transactions abort only at commit time (validation failure) or when a
/// read cannot obtain a stable latest version after bounded retries; the
/// reason is recorded for the abort statistics reported in §5.5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortReason {
    /// A read-set record's TID word changed, it is no longer the latest
    /// version, or it is locked by another transaction (Phase 2).
    ReadValidation,
    /// A node-set entry's version changed: a key was inserted into or removed
    /// from a scanned range or a looked-up-but-absent key's leaf (Phase 2).
    NodeValidation,
    /// An insert found the key already mapped to a non-absent record (§4.5).
    DuplicateKey,
    /// A read could not obtain the latest version of a record within the
    /// configured retry limit.
    UnstableRead,
    /// The transaction's own insert split a node whose recorded node-set
    /// version no longer matched (§4.6).
    NodeSetFixup,
    /// The application requested the abort explicitly.
    UserRequested,
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AbortReason::ReadValidation => "read-set validation failed",
            AbortReason::NodeValidation => "node-set validation failed",
            AbortReason::DuplicateKey => "insert of an existing key",
            AbortReason::UnstableRead => "could not read a stable latest version",
            AbortReason::NodeSetFixup => "node-set fix-up after own insert failed",
            AbortReason::UserRequested => "aborted by the application",
        };
        f.write_str(s)
    }
}

/// The error type returned by transaction operations and commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Abort(pub AbortReason);

impl fmt::Display for Abort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "transaction aborted: {}", self.0)
    }
}

impl std::error::Error for Abort {}

/// Errors raised by database catalog operations (not transaction aborts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// A table with this name already exists.
    TableExists(String),
    /// No table with this name or id exists.
    NoSuchTable(String),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::TableExists(name) => write!(f, "table `{name}` already exists"),
            CatalogError::NoSuchTable(name) => write!(f, "no such table `{name}`"),
        }
    }
}

impl std::error::Error for CatalogError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_strings_are_informative() {
        assert!(Abort(AbortReason::ReadValidation)
            .to_string()
            .contains("read-set"));
        assert!(Abort(AbortReason::NodeValidation)
            .to_string()
            .contains("node-set"));
        assert!(CatalogError::TableExists("t".into())
            .to_string()
            .contains("t"));
        assert!(CatalogError::NoSuchTable("x".into())
            .to_string()
            .contains("x"));
    }

    #[test]
    fn abort_reasons_are_hashable_and_comparable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(AbortReason::ReadValidation);
        set.insert(AbortReason::ReadValidation);
        set.insert(AbortReason::NodeValidation);
        assert_eq!(set.len(), 2);
    }
}
