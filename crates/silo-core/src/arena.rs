//! Per-worker bump arena for transaction-lifetime byte data.
//!
//! Silo's hot path must not touch the global allocator (paper §4.8: workers
//! run on per-core memory pools; Larson et al. make the same point for
//! main-memory engines generally). The write-set needs a copy of every key
//! and value the transaction writes — those copies live here. An [`Arena`]
//! bump-allocates out of a small set of fixed-size chunks; the chunks are
//! retained across transactions, so once a worker has seen its largest
//! transaction the arena never allocates again: `reset` just rewinds the
//! bump cursor.
//!
//! Chunks are individually boxed and never reallocated or moved while in
//! use, so an [`ArenaSlice`] handed out by [`Arena::alloc`] stays valid until
//! the next [`Arena::reset`] — which the transaction layer only calls after
//! commit or abort has finished with every slice.

/// Default chunk size. Large enough that a typical OLTP transaction (TPC-C
/// new-order writes ~1 KiB of keys + values) fits in one chunk.
const CHUNK_SIZE: usize = 64 * 1024;

/// Retained-capacity budget. After an unusually large transaction, `reset`
/// frees chunks beyond this total so one outlier does not pin memory forever.
const RETAIN_LIMIT: usize = 4 * 1024 * 1024;

/// A slice of bytes owned by an [`Arena`].
///
/// `Copy`, pointer-sized, and intentionally *not* a `&[u8]`: the borrow
/// checker cannot see the arena discipline, so dereferencing goes through
/// [`ArenaSlice::as_slice`], whose safety contract is "the owning arena has
/// not been reset since `alloc` returned this slice".
#[derive(Debug, Clone, Copy)]
pub(crate) struct ArenaSlice {
    ptr: *const u8,
    len: usize,
}

impl ArenaSlice {
    /// The canonical empty slice (valid forever; dangling but never read).
    pub(crate) fn empty() -> Self {
        ArenaSlice {
            ptr: std::ptr::NonNull::dangling().as_ptr(),
            len: 0,
        }
    }

    /// Length in bytes.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Reborrows the bytes.
    ///
    /// # Safety
    ///
    /// The arena this slice was allocated from must not have been reset (or
    /// dropped) since, and must not be reset while the returned borrow is
    /// live. The transaction layer guarantees this by resetting only after
    /// commit/abort has finished with the write-set.
    pub(crate) unsafe fn as_slice<'a>(&self) -> &'a [u8] {
        // SAFETY: per the caller's contract the backing chunk is alive and
        // the bytes were initialized by `Arena::alloc`.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

/// A chunked bump allocator. See the module docs for the retention story.
#[derive(Debug)]
pub(crate) struct Arena {
    /// Fixed-size chunks; each is a stable heap allocation that never moves.
    chunks: Vec<Box<[u8]>>,
    /// Index of the chunk currently being bumped.
    current: usize,
    /// Bump offset within the current chunk.
    offset: usize,
    /// Number of chunk allocations ever made (global-allocator hits).
    pub(crate) chunk_allocs: u64,
}

impl Default for Arena {
    fn default() -> Self {
        Arena::new()
    }
}

impl Arena {
    /// Creates an empty arena. Allocates nothing until first use.
    pub(crate) fn new() -> Self {
        Arena {
            chunks: Vec::new(),
            current: 0,
            offset: 0,
            chunk_allocs: 0,
        }
    }

    /// Copies `data` into the arena and returns a stable slice for it.
    pub(crate) fn alloc(&mut self, data: &[u8]) -> ArenaSlice {
        if data.is_empty() {
            return ArenaSlice::empty();
        }
        if self.chunks.is_empty() || self.offset + data.len() > self.chunks[self.current].len() {
            self.advance(data.len());
        }
        let chunk = &mut self.chunks[self.current];
        let dst = &mut chunk[self.offset..self.offset + data.len()];
        dst.copy_from_slice(data);
        self.offset += data.len();
        ArenaSlice {
            ptr: dst.as_ptr(),
            len: data.len(),
        }
    }

    /// Moves to the next chunk that can hold `need` bytes, allocating one
    /// (of at least [`CHUNK_SIZE`]) only when no retained chunk fits.
    fn advance(&mut self, need: usize) {
        loop {
            if !self.chunks.is_empty() {
                self.current += 1;
            }
            if self.current >= self.chunks.len() {
                self.chunks
                    .push(vec![0u8; CHUNK_SIZE.max(need)].into_boxed_slice());
                self.chunk_allocs += 1;
            }
            self.offset = 0;
            // A retained chunk can be smaller than an oversized request;
            // skip it (it is wasted for this transaction only).
            if self.chunks[self.current].len() >= need {
                return;
            }
        }
    }

    /// Rewinds the bump cursor, invalidating every outstanding slice. Chunks
    /// are retained up to [`RETAIN_LIMIT`] bytes so steady state allocates
    /// nothing.
    pub(crate) fn reset(&mut self) {
        self.current = 0;
        self.offset = 0;
        if self.retained_bytes() > RETAIN_LIMIT {
            // Keep every chunk that still fits the budget; only the counted
            // size of *kept* chunks accumulates, so one oversized outlier
            // does not evict the regular chunks behind it.
            let mut kept = 0;
            self.chunks.retain(|c| {
                if kept + c.len() <= RETAIN_LIMIT {
                    kept += c.len();
                    true
                } else {
                    false
                }
            });
        }
    }

    /// Total bytes of retained chunk capacity.
    pub(crate) fn retained_bytes(&self) -> usize {
        self.chunks.iter().map(|c| c.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_roundtrip_and_reset() {
        let mut a = Arena::new();
        let s1 = a.alloc(b"hello");
        let s2 = a.alloc(b"world!");
        // SAFETY: arena not reset since alloc.
        unsafe {
            assert_eq!(s1.as_slice(), b"hello");
            assert_eq!(s2.as_slice(), b"world!");
        }
        assert_eq!(s2.len(), 6);
        assert_eq!(a.chunk_allocs, 1);
        a.reset();
        let s3 = a.alloc(b"again");
        // SAFETY: arena not reset since alloc of s3.
        unsafe { assert_eq!(s3.as_slice(), b"again") };
        assert_eq!(a.chunk_allocs, 1, "reset must reuse the retained chunk");
    }

    #[test]
    fn empty_slices_never_touch_chunks() {
        let mut a = Arena::new();
        let s = a.alloc(b"");
        assert_eq!(s.len(), 0);
        // SAFETY: empty slices are always valid.
        unsafe { assert_eq!(s.as_slice(), b"") };
        assert_eq!(a.retained_bytes(), 0);
        assert_eq!(a.chunk_allocs, 0);
    }

    #[test]
    fn grows_across_chunks_and_reaches_steady_state() {
        let mut a = Arena::new();
        let big = vec![7u8; CHUNK_SIZE / 2 + 1];
        // Three half-chunk allocations force a second chunk.
        let slices: Vec<_> = (0..3).map(|_| a.alloc(&big)).collect();
        for s in &slices {
            // SAFETY: arena not reset since alloc.
            unsafe { assert_eq!(s.as_slice(), &big[..]) };
        }
        assert_eq!(a.chunk_allocs, 3);
        // The same pattern after reset allocates nothing new.
        a.reset();
        for _ in 0..3 {
            let _ = a.alloc(&big);
        }
        assert_eq!(a.chunk_allocs, 3);
    }

    #[test]
    fn oversized_allocations_get_dedicated_chunks() {
        let mut a = Arena::new();
        let huge = vec![9u8; CHUNK_SIZE * 2];
        let s = a.alloc(&huge);
        // SAFETY: arena not reset since alloc.
        unsafe { assert_eq!(s.as_slice(), &huge[..]) };
        assert!(a.retained_bytes() >= CHUNK_SIZE * 2);
    }

    #[test]
    fn reset_trims_past_the_retain_limit() {
        let mut a = Arena::new();
        let huge = vec![1u8; RETAIN_LIMIT];
        let _ = a.alloc(&huge);
        let _ = a.alloc(&huge);
        assert!(a.retained_bytes() > RETAIN_LIMIT);
        a.reset();
        assert!(a.retained_bytes() <= RETAIN_LIMIT);
        // Still usable after trimming.
        let s = a.alloc(b"ok");
        // SAFETY: arena not reset since alloc.
        unsafe { assert_eq!(s.as_slice(), b"ok") };
    }
}
