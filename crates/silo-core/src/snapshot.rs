//! Read-only snapshot transactions (paper §4.9).
//!
//! A snapshot transaction runs against the most recent *snapshot epoch*: a
//! consistent point in the serial order that lags the current epoch by `k`
//! epochs (about one second with the paper's parameters). For every record it
//! reads, the transaction walks the previous-version chain to the most recent
//! version whose TID epoch is `≤ se_w`. Because the snapshot is consistent
//! and never modified, snapshot transactions commit without validation and
//! **never abort** — which is exactly why the stock-level experiment of
//! Figure 10 benefits from them.

use silo_tid::Tid;

use crate::database::TableId;
use crate::record::Record;
use crate::worker::Worker;

/// A read-only transaction over a recent consistent snapshot. Created by
/// [`Worker::begin_snapshot`].
pub struct SnapshotTxn<'w> {
    worker: &'w mut Worker,
    snapshot_epoch: u64,
    reads: u64,
}

impl<'w> std::fmt::Debug for SnapshotTxn<'w> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotTxn")
            .field("snapshot_epoch", &self.snapshot_epoch)
            .field("reads", &self.reads)
            .finish()
    }
}

impl<'w> SnapshotTxn<'w> {
    pub(crate) fn new(worker: &'w mut Worker, snapshot_epoch: u64) -> Self {
        SnapshotTxn {
            worker,
            snapshot_epoch,
            reads: 0,
        }
    }

    /// The snapshot epoch this transaction reads from (`se_w`).
    pub fn snapshot_epoch(&self) -> u64 {
        self.snapshot_epoch
    }

    /// Number of records read so far (diagnostics).
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Reads `key` as of the snapshot, or `None` if the key did not exist at
    /// that point in the serial order.
    pub fn read(&mut self, table_id: TableId, key: &[u8]) -> Option<Vec<u8>> {
        let table_ptr = self.worker.table_ptr(table_id);
        // SAFETY: the worker's table cache keeps the table alive.
        let table = unsafe { &*table_ptr };
        let value = table.tree().get(key)?;
        self.reads += 1;
        let record = value as *const Record;
        // SAFETY: records reachable from the index are only freed after a
        // grace period; the worker's refreshed `se_w` pins every chain member
        // relevant for this snapshot.
        let rec = unsafe { &*record };
        let version = rec.snapshot_version(self.snapshot_epoch)?;
        let word = version.tid().read_stable();
        if word.is_absent() {
            return None;
        }
        let mut out = Vec::new();
        version.read_data_unvalidated(&mut out);
        Some(out)
    }

    /// Scans `[start, end)` as of the snapshot, returning at most `limit`
    /// records that existed at the snapshot point.
    pub fn scan(
        &mut self,
        table_id: TableId,
        start: &[u8],
        end: Option<&[u8]>,
        limit: Option<usize>,
    ) -> Vec<(Vec<u8>, Vec<u8>)> {
        let table_ptr = self.worker.table_ptr(table_id);
        // SAFETY: the worker's table cache keeps the table alive.
        let table = unsafe { &*table_ptr };
        let result = table.tree().scan(start, end, None);
        let limit = limit.unwrap_or(usize::MAX);
        let mut out = Vec::new();
        for (key, value) in result.entries {
            if out.len() >= limit {
                break;
            }
            let record = value as *const Record;
            // SAFETY: as in `read`.
            let rec = unsafe { &*record };
            let Some(version) = rec.snapshot_version(self.snapshot_epoch) else {
                continue;
            };
            let word = version.tid().read_stable();
            if word.is_absent() {
                continue;
            }
            self.reads += 1;
            let mut data = Vec::new();
            version.read_data_unvalidated(&mut data);
            out.push((key, data));
        }
        out
    }

    /// Streams every record of `table_id` that exists at this snapshot, in
    /// key order, into `f` as `(key, version TID, value bytes)`.
    ///
    /// This is the checkpoint scan hook (§4.9 applied to §4.10's
    /// checkpoints): the index is walked in chunks of `chunk` keys, so memory
    /// stays bounded no matter how large the table is, and the worker's
    /// *current* epoch `e_w` is re-refreshed between chunks (keeping its
    /// pinned `se_w`) so a long walk never stalls global epoch advancement.
    /// The yielded TID is the version's commit TID, which the recovery path
    /// uses to resolve conflicts against log-tail records.
    ///
    /// Returns the number of records yielded.
    pub fn scan_versions_into(
        &mut self,
        table_id: TableId,
        chunk: usize,
        mut f: impl FnMut(&[u8], Tid, &[u8]),
    ) -> u64 {
        let chunk = chunk.max(1);
        let snapshot_epoch = self.snapshot_epoch;
        let table_ptr = self.worker.table_ptr(table_id);
        // SAFETY: the worker's table cache keeps the table alive.
        let table = unsafe { &*table_ptr };
        let mut start: Vec<u8> = Vec::new();
        let mut data = Vec::new();
        let mut yielded = 0u64;
        loop {
            let result = table.tree().scan(&start, None, Some(chunk));
            let n = result.entries.len();
            for (key, value) in result.entries {
                let record = value as *const Record;
                // SAFETY: as in `read` — the pinned `se_w` keeps every chain
                // member this snapshot can reach alive.
                let rec = unsafe { &*record };
                // Validated read with retry: the chain *head* can change
                // under us (an in-place overwrite when snapshots are
                // disabled, or a concurrent commit pushing the version we
                // want onto the chain between the walk and the copy), so
                // copy via the §4.5 read protocol and re-walk if the version
                // turned out to belong to an epoch after the snapshot.
                while let Some(version) = rec.snapshot_version(snapshot_epoch) {
                    let word = version.read_consistent(&mut data);
                    if snapshot_epoch != u64::MAX && word.tid().epoch() > snapshot_epoch {
                        // The head moved past the snapshot mid-copy; the
                        // version this snapshot needs is now on the chain.
                        continue;
                    }
                    if !word.is_absent() {
                        self.reads += 1;
                        yielded += 1;
                        f(&key, word.tid(), &data);
                    }
                    break;
                }
                start = key;
            }
            if n < chunk {
                return yielded;
            }
            // Resume at the successor of the last key seen, and let the
            // global epoch move past us while we are between chunks.
            start.push(0);
            if snapshot_epoch != u64::MAX {
                self.worker.epoch().refresh_pinned(snapshot_epoch);
            } else {
                self.worker.epoch().refresh();
            }
        }
    }

    /// Completes the snapshot transaction. Snapshot transactions are
    /// consistent by construction, so this never fails; it only updates the
    /// worker's statistics. (Dropping the transaction has the same effect.)
    pub fn finish(self) {
        // Statistics are updated in Drop.
    }
}

impl<'w> Drop for SnapshotTxn<'w> {
    fn drop(&mut self) {
        self.worker.stats.snapshot_commits += 1;
    }
}
