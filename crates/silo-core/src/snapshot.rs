//! Read-only snapshot transactions (paper §4.9).
//!
//! A snapshot transaction runs against the most recent *snapshot epoch*: a
//! consistent point in the serial order that lags the current epoch by `k`
//! epochs (about one second with the paper's parameters). For every record it
//! reads, the transaction walks the previous-version chain to the most recent
//! version whose TID epoch is `≤ se_w`. Because the snapshot is consistent
//! and never modified, snapshot transactions commit without validation and
//! **never abort** — which is exactly why the stock-level experiment of
//! Figure 10 benefits from them.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use silo_tid::Tid;

use crate::database::TableId;
use crate::record::Record;
use crate::worker::Worker;

/// A byte-rate budget for long snapshot walks (the checkpointer's table
/// scans): on small machines an unthrottled walk competes with workers for
/// CPU, so the walk yields whenever it runs ahead of `bytes_per_sec`.
///
/// One pacer can be shared (`Arc`) by several walker threads, making the
/// rate a *global* budget across all of them. Walkers report progress with
/// [`WalkPacer::note`]; [`SnapshotTxn::scan_versions_paced`] sleeps off any
/// [`WalkPacer::backlog`] between chunks — in small slices, re-refreshing
/// the worker's epoch pin, so throttling never stalls global epoch
/// advancement.
#[derive(Debug)]
pub struct WalkPacer {
    bytes_per_sec: u64,
    started: Instant,
    bytes: AtomicU64,
}

impl WalkPacer {
    /// Creates a pacer budgeting `bytes_per_sec` (must be non-zero) from
    /// now.
    pub fn new(bytes_per_sec: u64) -> WalkPacer {
        WalkPacer {
            bytes_per_sec: bytes_per_sec.max(1),
            started: Instant::now(),
            bytes: AtomicU64::new(0),
        }
    }

    /// Records `bytes` of walk progress.
    pub fn note(&self, bytes: u64) {
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// How far the walk is ahead of its budget: the time that must still
    /// pass before the bytes reported so far fit under `bytes_per_sec`.
    pub fn backlog(&self) -> Duration {
        let target = self.bytes.load(Ordering::Relaxed) as f64 / self.bytes_per_sec as f64;
        let actual = self.started.elapsed().as_secs_f64();
        if target > actual {
            Duration::from_secs_f64(target - actual)
        } else {
            Duration::ZERO
        }
    }
}

/// A read-only transaction over a recent consistent snapshot. Created by
/// [`Worker::begin_snapshot`].
pub struct SnapshotTxn<'w> {
    worker: &'w mut Worker,
    snapshot_epoch: u64,
    reads: u64,
}

impl<'w> std::fmt::Debug for SnapshotTxn<'w> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotTxn")
            .field("snapshot_epoch", &self.snapshot_epoch)
            .field("reads", &self.reads)
            .finish()
    }
}

impl<'w> SnapshotTxn<'w> {
    pub(crate) fn new(worker: &'w mut Worker, snapshot_epoch: u64) -> Self {
        SnapshotTxn {
            worker,
            snapshot_epoch,
            reads: 0,
        }
    }

    /// The snapshot epoch this transaction reads from (`se_w`).
    pub fn snapshot_epoch(&self) -> u64 {
        self.snapshot_epoch
    }

    /// Number of records read so far (diagnostics).
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Reads `key` as of the snapshot, or `None` if the key did not exist at
    /// that point in the serial order.
    pub fn read(&mut self, table_id: TableId, key: &[u8]) -> Option<Vec<u8>> {
        let table_ptr = self.worker.table_ptr(table_id);
        // SAFETY: the worker's table cache keeps the table alive.
        let table = unsafe { &*table_ptr };
        let value = table.tree().get(key)?;
        self.reads += 1;
        let record = value as *const Record;
        // SAFETY: records reachable from the index are only freed after a
        // grace period; the worker's refreshed `se_w` pins every chain member
        // relevant for this snapshot.
        let rec = unsafe { &*record };
        let version = rec.snapshot_version(self.snapshot_epoch)?;
        let word = version.tid().read_stable();
        if word.is_absent() {
            return None;
        }
        let mut out = Vec::new();
        version.read_data_unvalidated(&mut out);
        Some(out)
    }

    /// Scans `[start, end)` as of the snapshot, returning at most `limit`
    /// records that existed at the snapshot point.
    pub fn scan(
        &mut self,
        table_id: TableId,
        start: &[u8],
        end: Option<&[u8]>,
        limit: Option<usize>,
    ) -> Vec<(Vec<u8>, Vec<u8>)> {
        let table_ptr = self.worker.table_ptr(table_id);
        // SAFETY: the worker's table cache keeps the table alive.
        let table = unsafe { &*table_ptr };
        let result = table.tree().scan(start, end, None);
        let limit = limit.unwrap_or(usize::MAX);
        let mut out = Vec::new();
        for (key, value) in result.entries {
            if out.len() >= limit {
                break;
            }
            let record = value as *const Record;
            // SAFETY: as in `read`.
            let rec = unsafe { &*record };
            let Some(version) = rec.snapshot_version(self.snapshot_epoch) else {
                continue;
            };
            let word = version.tid().read_stable();
            if word.is_absent() {
                continue;
            }
            self.reads += 1;
            let mut data = Vec::new();
            version.read_data_unvalidated(&mut data);
            out.push((key, data));
        }
        out
    }

    /// Streams every record of `table_id` that exists at this snapshot, in
    /// key order, into `f` as `(key, version TID, value bytes)`.
    ///
    /// This is the checkpoint scan hook (§4.9 applied to §4.10's
    /// checkpoints): the index is walked in chunks of `chunk` keys, so memory
    /// stays bounded no matter how large the table is, and the worker's
    /// *current* epoch `e_w` is re-refreshed between chunks (keeping its
    /// pinned `se_w`) so a long walk never stalls global epoch advancement.
    /// The yielded TID is the version's commit TID, which the recovery path
    /// uses to resolve conflicts against log-tail records.
    ///
    /// Returns the number of records yielded.
    pub fn scan_versions_into(
        &mut self,
        table_id: TableId,
        chunk: usize,
        f: impl FnMut(&[u8], Tid, &[u8]),
    ) -> u64 {
        self.scan_versions_paced(table_id, chunk, None, f)
    }

    /// [`SnapshotTxn::scan_versions_into`] with an optional rate limit: when
    /// a [`WalkPacer`] is given, the walk sleeps off the pacer's backlog
    /// between chunks (in short slices, keeping the worker's epoch pin fresh
    /// so global epoch advancement is delayed by at most one slice). The
    /// caller reports its notion of progress — e.g. serialized bytes — via
    /// [`WalkPacer::note`] from inside `f`.
    pub fn scan_versions_paced(
        &mut self,
        table_id: TableId,
        chunk: usize,
        pacer: Option<&WalkPacer>,
        mut f: impl FnMut(&[u8], Tid, &[u8]),
    ) -> u64 {
        let chunk = chunk.max(1);
        let snapshot_epoch = self.snapshot_epoch;
        let table_ptr = self.worker.table_ptr(table_id);
        // SAFETY: the worker's table cache keeps the table alive.
        let table = unsafe { &*table_ptr };
        let mut start: Vec<u8> = Vec::new();
        let mut data = Vec::new();
        let mut yielded = 0u64;
        loop {
            let result = table.tree().scan(&start, None, Some(chunk));
            let n = result.entries.len();
            for (key, value) in result.entries {
                let record = value as *const Record;
                // SAFETY: as in `read` — the pinned `se_w` keeps every chain
                // member this snapshot can reach alive.
                let rec = unsafe { &*record };
                // Validated read with retry: the chain *head* can change
                // under us (an in-place overwrite when snapshots are
                // disabled, or a concurrent commit pushing the version we
                // want onto the chain between the walk and the copy), so
                // copy via the §4.5 read protocol and re-walk if the version
                // turned out to belong to an epoch after the snapshot.
                while let Some(version) = rec.snapshot_version(snapshot_epoch) {
                    let word = version.read_consistent(&mut data);
                    if snapshot_epoch != u64::MAX && word.tid().epoch() > snapshot_epoch {
                        // The head moved past the snapshot mid-copy; the
                        // version this snapshot needs is now on the chain.
                        continue;
                    }
                    if !word.is_absent() {
                        self.reads += 1;
                        yielded += 1;
                        f(&key, word.tid(), &data);
                    }
                    break;
                }
                start = key;
            }
            if n < chunk {
                return yielded;
            }
            // Resume at the successor of the last key seen, and let the
            // global epoch move past us while we are between chunks.
            start.push(0);
            self.refresh_walk_pin(snapshot_epoch);
            // Throttle: sleep off the pacer backlog in ≤ 2 ms slices,
            // re-refreshing the pin after each slice so a long throttle
            // never holds back the epoch.
            if let Some(pacer) = pacer {
                loop {
                    let backlog = pacer.backlog();
                    if backlog.is_zero() {
                        break;
                    }
                    std::thread::sleep(backlog.min(std::time::Duration::from_millis(2)));
                    self.refresh_walk_pin(snapshot_epoch);
                }
            }
        }
    }

    /// Re-refreshes the worker's epoch between walk chunks: keep `se_w`
    /// pinned to the snapshot (so its versions stay reachable) while moving
    /// `e_w` forward — or, with snapshots disabled, a plain refresh.
    fn refresh_walk_pin(&self, snapshot_epoch: u64) {
        if snapshot_epoch != u64::MAX {
            self.worker.epoch().refresh_pinned(snapshot_epoch);
        } else {
            self.worker.epoch().refresh();
        }
    }

    /// Completes the snapshot transaction. Snapshot transactions are
    /// consistent by construction, so this never fails; it only updates the
    /// worker's statistics. (Dropping the transaction has the same effect.)
    pub fn finish(self) {
        // Statistics are updated in Drop.
    }
}

impl<'w> Drop for SnapshotTxn<'w> {
    fn drop(&mut self) {
        self.worker.stats.snapshot_commits += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SiloConfig;
    use crate::database::Database;

    #[test]
    fn walk_pacer_backlog_tracks_budget() {
        let pacer = WalkPacer::new(1_000_000);
        assert_eq!(pacer.backlog(), Duration::ZERO);
        // 100 KB at 1 MB/s = 100 ms of budget; essentially no time passed.
        pacer.note(100_000);
        let backlog = pacer.backlog();
        assert!(
            backlog > Duration::from_millis(50) && backlog <= Duration::from_millis(100),
            "unexpected backlog {backlog:?}"
        );
    }

    #[test]
    fn paced_scan_is_throttled_and_complete() {
        // Snapshots disabled: the walk reads latest versions, so the test
        // does not depend on epoch advancement.
        let db = Database::open(SiloConfig::for_testing().without_snapshots());
        let t = db.create_table("t").unwrap();
        let mut w = db.register_worker();
        let mut txn = w.begin();
        for i in 0..200u32 {
            txn.write(t, &i.to_be_bytes(), &[0u8; 64]).unwrap();
        }
        txn.commit().unwrap();

        // 200 × 64 B of values at 100 KB/s ≈ 128 ms minimum walk time.
        let pacer = WalkPacer::new(100_000);
        let started = Instant::now();
        let mut snap = w.begin_snapshot();
        let yielded = snap.scan_versions_paced(t, 32, Some(&pacer), |_, _, value| {
            pacer.note(value.len() as u64);
        });
        assert_eq!(yielded, 200);
        assert!(
            started.elapsed() >= Duration::from_millis(100),
            "walk was not throttled: {:?}",
            started.elapsed()
        );
    }
}
