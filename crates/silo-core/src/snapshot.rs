//! Read-only snapshot transactions (paper §4.9).
//!
//! A snapshot transaction runs against the most recent *snapshot epoch*: a
//! consistent point in the serial order that lags the current epoch by `k`
//! epochs (about one second with the paper's parameters). For every record it
//! reads, the transaction walks the previous-version chain to the most recent
//! version whose TID epoch is `≤ se_w`. Because the snapshot is consistent
//! and never modified, snapshot transactions commit without validation and
//! **never abort** — which is exactly why the stock-level experiment of
//! Figure 10 benefits from them.

use crate::database::TableId;
use crate::record::Record;
use crate::worker::Worker;

/// A read-only transaction over a recent consistent snapshot. Created by
/// [`Worker::begin_snapshot`].
pub struct SnapshotTxn<'w> {
    worker: &'w mut Worker,
    snapshot_epoch: u64,
    reads: u64,
}

impl<'w> std::fmt::Debug for SnapshotTxn<'w> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotTxn")
            .field("snapshot_epoch", &self.snapshot_epoch)
            .field("reads", &self.reads)
            .finish()
    }
}

impl<'w> SnapshotTxn<'w> {
    pub(crate) fn new(worker: &'w mut Worker, snapshot_epoch: u64) -> Self {
        SnapshotTxn {
            worker,
            snapshot_epoch,
            reads: 0,
        }
    }

    /// The snapshot epoch this transaction reads from (`se_w`).
    pub fn snapshot_epoch(&self) -> u64 {
        self.snapshot_epoch
    }

    /// Number of records read so far (diagnostics).
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Reads `key` as of the snapshot, or `None` if the key did not exist at
    /// that point in the serial order.
    pub fn read(&mut self, table_id: TableId, key: &[u8]) -> Option<Vec<u8>> {
        let table_ptr = self.worker.table_ptr(table_id);
        // SAFETY: the worker's table cache keeps the table alive.
        let table = unsafe { &*table_ptr };
        let value = table.tree().get(key)?;
        self.reads += 1;
        let record = value as *const Record;
        // SAFETY: records reachable from the index are only freed after a
        // grace period; the worker's refreshed `se_w` pins every chain member
        // relevant for this snapshot.
        let rec = unsafe { &*record };
        let version = rec.snapshot_version(self.snapshot_epoch)?;
        let word = version.tid().read_stable();
        if word.is_absent() {
            return None;
        }
        let mut out = Vec::new();
        version.read_data_unvalidated(&mut out);
        Some(out)
    }

    /// Scans `[start, end)` as of the snapshot, returning at most `limit`
    /// records that existed at the snapshot point.
    pub fn scan(
        &mut self,
        table_id: TableId,
        start: &[u8],
        end: Option<&[u8]>,
        limit: Option<usize>,
    ) -> Vec<(Vec<u8>, Vec<u8>)> {
        let table_ptr = self.worker.table_ptr(table_id);
        // SAFETY: the worker's table cache keeps the table alive.
        let table = unsafe { &*table_ptr };
        let result = table.tree().scan(start, end, None);
        let limit = limit.unwrap_or(usize::MAX);
        let mut out = Vec::new();
        for (key, value) in result.entries {
            if out.len() >= limit {
                break;
            }
            let record = value as *const Record;
            // SAFETY: as in `read`.
            let rec = unsafe { &*record };
            let Some(version) = rec.snapshot_version(self.snapshot_epoch) else {
                continue;
            };
            let word = version.tid().read_stable();
            if word.is_absent() {
                continue;
            }
            self.reads += 1;
            let mut data = Vec::new();
            version.read_data_unvalidated(&mut data);
            out.push((key, data));
        }
        out
    }

    /// Completes the snapshot transaction. Snapshot transactions are
    /// consistent by construction, so this never fails; it only updates the
    /// worker's statistics. (Dropping the transaction has the same effect.)
    pub fn finish(self) {
        // Statistics are updated in Drop.
    }
}

impl<'w> Drop for SnapshotTxn<'w> {
    fn drop(&mut self) {
        self.worker.stats.snapshot_commits += 1;
    }
}
