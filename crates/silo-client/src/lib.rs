//! # silo-client — a blocking, pipelining client for the silo-net protocol
//!
//! Two layers:
//!
//! * [`Connection`] — one TCP connection speaking the length-prefixed frame
//!   protocol, with explicit **pipelining**: [`Connection::send`] queues a
//!   request without waiting, [`Connection::recv`] takes the next response
//!   (responses arrive in request order, so no ids are needed). Issue `N`,
//!   then drain `N` — the server executes the whole burst as batches and one
//!   group commit releases every write ack in it.
//! * [`Session`] — the same session vocabulary the embedded
//!   `silo_core::Session` API uses: `get`/`put`/`insert`/`delete`/`scan` as
//!   single-operation transactions plus [`Session::transact`] for atomic
//!   multi-operation transactions, each call synchronous (`send` + `flush` +
//!   `recv`).
//!
//! ```no_run
//! use silo_client::{Connection, Session};
//!
//! let mut session = Session::connect("127.0.0.1:4000").unwrap();
//! let accounts = session.open_table("accounts").unwrap();
//! session.put(accounts, b"alice", b"100").unwrap(); // acked once durable
//! assert_eq!(session.get(accounts, b"alice").unwrap(), Some(b"100".to_vec()));
//! ```
//!
//! A server shedding load surfaces as a typed [`ClientError::Server`] whose
//! [`ErrorCode`] distinguishes `ServerBusy` (backlog — retry after backoff)
//! from `DurabilityDegraded` (the log can't back new acks — probe
//! [`Session::health`] and retry once healthy) from `Aborted` (OCC conflict —
//! retry the transaction).

#![warn(missing_docs)]

use std::io::{BufReader, BufWriter, Write as _};
use std::net::{TcpStream, ToSocketAddrs};

use silo_net::protocol::{self, FrameError, Request, Response, TxnOp, DEFAULT_MAX_FRAME_BYTES};

pub use silo_net::protocol::{ErrorCode, HealthStatus, ProtocolError};

/// A typed error frame returned by the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerError {
    /// The error class (retryability is encoded here).
    pub code: ErrorCode,
    /// Human-readable detail from the server.
    pub detail: String,
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.detail)
    }
}

impl std::error::Error for ServerError {}

/// Everything that can go wrong on the client side.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (includes the server closing the connection
    /// mid-frame).
    Io(std::io::Error),
    /// The server sent a frame this client could not decode, or a response
    /// of an unexpected type for the request.
    Protocol(String),
    /// The connection was closed by the server while responses were still
    /// outstanding.
    Closed,
    /// The server answered with a typed error frame.
    Server(ServerError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(d) => write!(f, "protocol error: {d}"),
            ClientError::Closed => write!(f, "connection closed with responses outstanding"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => ClientError::Io(e),
            other => ClientError::Protocol(other.to_string()),
        }
    }
}

impl ClientError {
    /// Whether this is a typed shed/abort the caller should retry (possibly
    /// after backoff or a health probe): `Aborted`, `ServerBusy`, or
    /// `DurabilityDegraded`.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ClientError::Server(ServerError {
                code: ErrorCode::Aborted | ErrorCode::ServerBusy | ErrorCode::DurabilityDegraded,
                ..
            })
        )
    }

    /// The typed server error code, if this is a server error.
    pub fn server_code(&self) -> Option<ErrorCode> {
        match self {
            ClientError::Server(e) => Some(e.code),
            _ => None,
        }
    }
}

/// One pipelined connection to a silo-net server.
///
/// [`Connection::send`] buffers a request and counts it as in-flight;
/// [`Connection::flush`] pushes the burst onto the wire; [`Connection::recv`]
/// reads the next response (flushing first if needed). [`Connection::call`]
/// is the synchronous send-flush-recv convenience. The server answers in
/// request order, so the `k`-th `recv` after a burst corresponds to the
/// `k`-th `send`.
pub struct Connection {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    in_flight: usize,
    max_frame_bytes: usize,
    encode_buf: Vec<u8>,
    frame_buf: Vec<u8>,
}

impl Connection {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Connection, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        Ok(Connection {
            reader,
            writer,
            in_flight: 0,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            encode_buf: Vec::new(),
            frame_buf: Vec::new(),
        })
    }

    /// Caps the size of response frames this client will accept.
    pub fn set_max_frame_bytes(&mut self, bytes: usize) {
        self.max_frame_bytes = bytes;
    }

    /// Queues one request into the connection's write buffer without
    /// flushing. Pair each `send` with a later [`Connection::recv`].
    pub fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        self.encode_buf.clear();
        protocol::encode_request(&mut self.encode_buf, req);
        protocol::write_frame(&mut self.writer, &self.encode_buf)?;
        self.in_flight += 1;
        Ok(())
    }

    /// Pushes every buffered request onto the wire.
    pub fn flush(&mut self) -> Result<(), ClientError> {
        self.writer.flush()?;
        Ok(())
    }

    /// Reads the next response, flushing buffered requests first. Returns
    /// [`ClientError::Closed`] if the server hung up with responses
    /// outstanding. A typed error frame is returned as `Ok(Response::Error)`
    /// — use [`Connection::recv_result`] to turn those into
    /// [`ClientError::Server`].
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        if self.in_flight == 0 {
            return Err(ClientError::Protocol("recv with no request in flight".to_string()));
        }
        self.flush()?;
        if !protocol::read_frame(&mut self.reader, &mut self.frame_buf, self.max_frame_bytes)? {
            return Err(ClientError::Closed);
        }
        self.in_flight -= 1;
        protocol::decode_response(&self.frame_buf)
            .map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Like [`Connection::recv`], but converts a typed error frame into
    /// [`ClientError::Server`].
    pub fn recv_result(&mut self) -> Result<Response, ClientError> {
        match self.recv()? {
            Response::Error { code, detail } => {
                Err(ClientError::Server(ServerError { code, detail }))
            }
            resp => Ok(resp),
        }
    }

    /// Synchronous request: send, flush, receive (typed errors become
    /// [`ClientError::Server`]).
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.send(req)?;
        self.recv_result()
    }

    /// Requests sent but not yet answered.
    pub fn pending(&self) -> usize {
        self.in_flight
    }
}

/// A durability health report from [`Session::health`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthReport {
    /// The server's durability classification.
    pub health: HealthStatus,
    /// Epochs the durable epoch trails the global epoch by.
    pub lag_epochs: u64,
    /// The server's durable epoch `D`.
    pub durable_epoch: u64,
    /// The server's global epoch `E`.
    pub global_epoch: u64,
}

/// Key-value entries returned by [`Session::scan`], in key order.
pub type ScanEntries = Vec<(Vec<u8>, Vec<u8>)>;

/// The remote counterpart of the embedded `silo_core::Session`: each method
/// is one transaction against the server, synchronous and in the same
/// vocabulary (`get`/`put`/`insert`/`delete`/`scan`/`transact`).
///
/// For throughput, use [`Session::connection`]-level pipelining (or the
/// `fig_net` load generator's pattern): issue a burst of `send`s, then drain
/// with `recv`.
pub struct Session {
    conn: Connection,
}

impl Session {
    /// Connects a new session.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Session, ClientError> {
        Ok(Session { conn: Connection::connect(addr)? })
    }

    /// Wraps an existing connection.
    pub fn from_connection(conn: Connection) -> Session {
        Session { conn }
    }

    /// The underlying connection, for explicit pipelining.
    pub fn connection(&mut self) -> &mut Connection {
        &mut self.conn
    }

    /// Resolves a table name to an id, creating the table if missing.
    pub fn open_table(&mut self, name: &str) -> Result<u32, ClientError> {
        match self.conn.call(&Request::OpenTable { name: name.to_string() })? {
            Response::TableId { id } => Ok(id),
            other => Err(unexpected("TableId", &other)),
        }
    }

    /// Reads one key (a single-operation transaction).
    pub fn get(&mut self, table: u32, key: &[u8]) -> Result<Option<Vec<u8>>, ClientError> {
        match self.conn.call(&Request::Get { table, key: key.to_vec() })? {
            Response::Value { value } => Ok(value),
            other => Err(unexpected("Value", &other)),
        }
    }

    /// Upserts one key. `Ok(())` means *durably committed* when the server
    /// runs with a durability subsystem.
    pub fn put(&mut self, table: u32, key: &[u8], value: &[u8]) -> Result<(), ClientError> {
        match self.conn.call(&Request::Put {
            table,
            key: key.to_vec(),
            value: value.to_vec(),
        })? {
            Response::Ok => Ok(()),
            other => Err(unexpected("Ok", &other)),
        }
    }

    /// Inserts one key; a duplicate key surfaces as a typed `Aborted` error.
    pub fn insert(&mut self, table: u32, key: &[u8], value: &[u8]) -> Result<(), ClientError> {
        match self.conn.call(&Request::Insert {
            table,
            key: key.to_vec(),
            value: value.to_vec(),
        })? {
            Response::Ok => Ok(()),
            other => Err(unexpected("Ok", &other)),
        }
    }

    /// Deletes one key (idempotent).
    pub fn delete(&mut self, table: u32, key: &[u8]) -> Result<(), ClientError> {
        match self.conn.call(&Request::Delete { table, key: key.to_vec() })? {
            Response::Ok => Ok(()),
            other => Err(unexpected("Ok", &other)),
        }
    }

    /// Range scan `[start, end)`, at most `limit` entries (`None` = all).
    pub fn scan(
        &mut self,
        table: u32,
        start: &[u8],
        end: Option<&[u8]>,
        limit: Option<u32>,
    ) -> Result<ScanEntries, ClientError> {
        match self.conn.call(&Request::Scan {
            table,
            start: start.to_vec(),
            end: end.map(<[u8]>::to_vec),
            limit: limit.unwrap_or(0),
        })? {
            Response::Entries { entries } => Ok(entries),
            other => Err(unexpected("Entries", &other)),
        }
    }

    /// Executes a multi-operation transaction atomically on the server and
    /// returns the values observed by its `get`s, in operation order. If the
    /// transaction wrote, success means the writes are durable.
    ///
    /// ```no_run
    /// # use silo_client::{Session, TxnBuilder};
    /// # let mut session = Session::connect("127.0.0.1:4000").unwrap();
    /// # let accounts = session.open_table("accounts").unwrap();
    /// let reads = session.transact(
    ///     TxnBuilder::new()
    ///         .get(accounts, b"alice")
    ///         .put(accounts, b"bob", b"250"),
    /// ).unwrap();
    /// let alice = reads[0].as_deref();
    /// # let _ = alice;
    /// ```
    pub fn transact(&mut self, txn: TxnBuilder) -> Result<Vec<Option<Vec<u8>>>, ClientError> {
        match self.conn.call(&Request::Txn { ops: txn.ops })? {
            Response::TxnOk { reads } => Ok(reads),
            other => Err(unexpected("TxnOk", &other)),
        }
    }

    /// Probes the server's durability health.
    pub fn health(&mut self) -> Result<HealthReport, ClientError> {
        match self.conn.call(&Request::Health)? {
            Response::Health { health, lag_epochs, durable_epoch, global_epoch } => {
                Ok(HealthReport { health, lag_epochs, durable_epoch, global_epoch })
            }
            other => Err(unexpected("Health", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    ClientError::Protocol(format!("expected {wanted} response, got {got:?}"))
}

/// Builds the operation list for [`Session::transact`].
#[derive(Debug, Default, Clone)]
pub struct TxnBuilder {
    ops: Vec<TxnOp>,
}

impl TxnBuilder {
    /// An empty transaction.
    pub fn new() -> TxnBuilder {
        TxnBuilder::default()
    }

    /// Adds a read; its result lands in the corresponding slot of the
    /// vector [`Session::transact`] returns.
    pub fn get(mut self, table: u32, key: &[u8]) -> Self {
        self.ops.push(TxnOp::Get { table, key: key.to_vec() });
        self
    }

    /// Adds an upsert.
    pub fn put(mut self, table: u32, key: &[u8], value: &[u8]) -> Self {
        self.ops.push(TxnOp::Put { table, key: key.to_vec(), value: value.to_vec() });
        self
    }

    /// Adds an insert (duplicate key aborts the whole transaction).
    pub fn insert(mut self, table: u32, key: &[u8], value: &[u8]) -> Self {
        self.ops.push(TxnOp::Insert { table, key: key.to_vec(), value: value.to_vec() });
        self
    }

    /// Adds a delete.
    pub fn delete(mut self, table: u32, key: &[u8]) -> Self {
        self.ops.push(TxnOp::Delete { table, key: key.to_vec() });
        self
    }

    /// The operations queued so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no operations are queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}
