//! # silo-client — a blocking, pipelining client for the silo-net protocol
//!
//! Two layers:
//!
//! * [`Connection`] — one TCP connection speaking the length-prefixed frame
//!   protocol, with explicit **pipelining**: [`Connection::send`] queues a
//!   request without waiting, [`Connection::recv`] takes the next response
//!   (responses arrive in request order, so no ids are needed). Issue `N`,
//!   then drain `N` — the server executes the whole burst as batches and one
//!   group commit releases every write ack in it.
//! * [`Session`] — the same session vocabulary the embedded
//!   `silo_core::Session` API uses: `get`/`put`/`insert`/`delete`/`scan` as
//!   single-operation transactions plus [`Session::transact`] for atomic
//!   multi-operation transactions, each call synchronous (`send` + `flush` +
//!   `recv`).
//!
//! ```no_run
//! use silo_client::{Connection, Session};
//!
//! let mut session = Session::connect("127.0.0.1:4000").unwrap();
//! let accounts = session.open_table("accounts").unwrap();
//! session.put(accounts, b"alice", b"100").unwrap(); // acked once durable
//! assert_eq!(session.get(accounts, b"alice").unwrap(), Some(b"100".to_vec()));
//! ```
//!
//! # Resilience
//!
//! A [`Session`] opened with [`ClientConfig::resilient`] rides out partial
//! failure instead of surfacing it:
//!
//! * **Timeouts** — socket read/write timeouts plus a per-request deadline
//!   bound every blocking call ([`ClientError::TimedOut`]).
//! * **Retries** — a [`RetryPolicy`] (capped exponential backoff + jitter,
//!   bounded attempts) transparently retries `ServerBusy`, OCC `Aborted`
//!   outcomes, and — after probing [`Session::health`] until the server
//!   recovers — `DurabilityDegraded` sheds.
//! * **Reconnect + exactly-once replay** — the `HELLO` handshake negotiates
//!   *request tokens*: every write is wrapped in a client-assigned token and
//!   the server remembers recent outcomes per connection *lineage*, so a
//!   write whose ack was lost to a connection reset can be re-issued after
//!   reconnecting without being applied twice. A write that was in flight
//!   *without* a token when the transport died is never silently retried —
//!   it surfaces as the typed [`ClientError::AckUnknown`], telling the
//!   application the write may or may not have committed.
//!
//! A server shedding load surfaces as a typed [`ClientError::Server`] whose
//! [`ErrorCode`] distinguishes `ServerBusy` (backlog — retry after backoff)
//! from `DurabilityDegraded` (the log can't back new acks — probe
//! [`Session::health`] and retry once healthy) from `Aborted` (OCC conflict —
//! retry the transaction).

#![warn(missing_docs)]

use std::io::{BufReader, BufWriter, Write as _};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use silo_net::fault::{FaultStream, NetFaultPlan};
use silo_net::protocol::{
    self, FrameError, Request, Response, TxnOp, DEFAULT_MAX_FRAME_BYTES, FEATURE_REQUEST_TOKENS,
    PROTOCOL_VERSION,
};

pub use silo_net::protocol::{ErrorCode, HealthStatus, ProtocolError};

/// A typed error frame returned by the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerError {
    /// The error class (retryability is encoded here).
    pub code: ErrorCode,
    /// Human-readable detail from the server.
    pub detail: String,
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.detail)
    }
}

impl std::error::Error for ServerError {}

/// Everything that can go wrong on the client side.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (includes the server closing the connection
    /// mid-frame).
    Io(std::io::Error),
    /// The server sent a frame this client could not decode, or a response
    /// of an unexpected type for the request.
    Protocol(String),
    /// The connection was closed by the server while responses were still
    /// outstanding.
    Closed,
    /// The server answered with a typed error frame.
    Server(ServerError),
    /// A socket timeout or per-request deadline expired.
    TimedOut,
    /// The transport died while an **untokenized write** was in flight: the
    /// write may or may not have committed, and retrying it blindly could
    /// apply it twice. The payload is the underlying transport error.
    /// Sessions with request tokens negotiated never surface this — their
    /// writes replay safely instead.
    AckUnknown(Box<ClientError>),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(d) => write!(f, "protocol error: {d}"),
            ClientError::Closed => write!(f, "connection closed with responses outstanding"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::TimedOut => write!(f, "request timed out"),
            ClientError::AckUnknown(cause) => {
                write!(f, "write outcome unknown (transport died mid-request: {cause})")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        if matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut) {
            ClientError::TimedOut
        } else {
            ClientError::Io(e)
        }
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => ClientError::from(e),
            FrameError::TimedOut { .. } => ClientError::TimedOut,
            other => ClientError::Protocol(other.to_string()),
        }
    }
}

impl ClientError {
    /// Whether this is a typed shed/abort the caller should retry (possibly
    /// after backoff or a health probe): `Aborted`, `ServerBusy`, or
    /// `DurabilityDegraded`.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ClientError::Server(ServerError {
                code: ErrorCode::Aborted | ErrorCode::ServerBusy | ErrorCode::DurabilityDegraded,
                ..
            })
        )
    }

    /// The typed server error code, if this is a server error.
    pub fn server_code(&self) -> Option<ErrorCode> {
        match self {
            ClientError::Server(e) => Some(e.code),
            _ => None,
        }
    }

    /// Whether the transport (rather than the server's typed answer) failed:
    /// the connection is dead and only a reconnect can continue.
    fn is_transport(&self) -> bool {
        matches!(
            self,
            ClientError::Io(_)
                | ClientError::Protocol(_)
                | ClientError::Closed
                | ClientError::TimedOut
        )
    }
}

/// How a [`Session`] retries retryable outcomes: capped exponential backoff
/// with jitter and a bounded attempt budget.
///
/// Non-exhaustive with `with_*` builders. [`RetryPolicy::none`] (the
/// [`ClientConfig`] default) disables retries entirely; every error
/// surfaces on the first attempt.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct RetryPolicy {
    /// Maximum retries after the first attempt (0 = never retry).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per retry.
    pub initial_backoff: Duration,
    /// Backoff cap.
    pub max_backoff: Duration,
    /// Randomize each backoff within `[backoff/2, backoff]` so synchronized
    /// clients do not retry in lockstep.
    pub jitter: bool,
    /// Whether OCC `Aborted` outcomes are retried (single-op requests are
    /// value-idempotent, so this is safe; multi-op `transact` retries re-run
    /// the whole batch).
    pub retry_aborts: bool,
    /// On `DurabilityDegraded`, poll [`Session::health`] for up to this long
    /// waiting for the server to report `Healthy` before retrying
    /// (`Duration::ZERO` = retry on plain backoff instead).
    pub wait_for_health: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 8,
            initial_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(250),
            jitter: true,
            retry_aborts: true,
            wait_for_health: Duration::from_secs(5),
        }
    }
}

impl RetryPolicy {
    /// No retries: every error surfaces on the first attempt.
    pub fn none() -> RetryPolicy {
        RetryPolicy { max_retries: 0, ..RetryPolicy::default() }
    }

    /// Sets the retry budget.
    pub fn with_max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Sets the initial backoff.
    pub fn with_initial_backoff(mut self, backoff: Duration) -> Self {
        self.initial_backoff = backoff;
        self
    }

    /// Sets the backoff cap.
    pub fn with_max_backoff(mut self, backoff: Duration) -> Self {
        self.max_backoff = backoff;
        self
    }

    /// Enables or disables backoff jitter.
    pub fn with_jitter(mut self, jitter: bool) -> Self {
        self.jitter = jitter;
        self
    }

    /// Enables or disables retrying OCC aborts.
    pub fn with_retry_aborts(mut self, retry: bool) -> Self {
        self.retry_aborts = retry;
        self
    }

    /// Sets the health-recovery wait budget for `DurabilityDegraded`.
    pub fn with_wait_for_health(mut self, budget: Duration) -> Self {
        self.wait_for_health = budget;
        self
    }
}

/// Configuration for [`Session::connect_with`] /
/// [`Connection::connect_with`].
///
/// The default matches the historical client: no retries, no reconnection,
/// generous socket timeouts, and a protocol handshake. Opt into the full
/// resilience stack with [`ClientConfig::resilient`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ClientConfig {
    /// TCP connect timeout (`Duration::ZERO` = the OS default).
    pub connect_timeout: Duration,
    /// Socket read timeout: the longest a blocking receive may sit with no
    /// bytes arriving (`Duration::ZERO` disables).
    pub read_timeout: Duration,
    /// Socket write timeout (`Duration::ZERO` disables).
    pub write_timeout: Duration,
    /// Per-response deadline: once a response frame's first byte arrives,
    /// the rest must follow within this budget (`Duration::ZERO` = the
    /// socket read timeout alone governs).
    pub request_deadline: Duration,
    /// Cap on accepted response frames.
    pub max_frame_bytes: usize,
    /// The retry policy for retryable outcomes.
    pub retry: RetryPolicy,
    /// Whether a dead connection is transparently re-dialed (with a fresh
    /// handshake and token replay for in-flight tokenized writes).
    pub reconnect: bool,
    /// Whether to open connections with a `HELLO` handshake (negotiating the
    /// protocol version, and request tokens when `reconnect` is on).
    pub handshake: bool,
    /// The session's connection lineage (keys the server's token-replay
    /// window across reconnects). 0 = derive a process-unique lineage.
    pub lineage: u64,
    /// Wire fault-injection plan spliced into every connection this config
    /// opens (`None` in production: one branch per I/O call).
    pub fault: Option<Arc<NetFaultPlan>>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            request_deadline: Duration::ZERO,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            retry: RetryPolicy::none(),
            reconnect: false,
            handshake: true,
            lineage: 0,
            fault: None,
        }
    }
}

impl ClientConfig {
    /// The full resilience stack: default retries, reconnection, and
    /// tokenized write replay.
    pub fn resilient() -> ClientConfig {
        ClientConfig {
            retry: RetryPolicy::default(),
            reconnect: true,
            ..ClientConfig::default()
        }
    }

    /// Sets the TCP connect timeout (`Duration::ZERO` = OS default).
    pub fn with_connect_timeout(mut self, timeout: Duration) -> Self {
        self.connect_timeout = timeout;
        self
    }

    /// Sets the socket read timeout (`Duration::ZERO` disables).
    pub fn with_read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Sets the socket write timeout (`Duration::ZERO` disables).
    pub fn with_write_timeout(mut self, timeout: Duration) -> Self {
        self.write_timeout = timeout;
        self
    }

    /// Sets the per-response deadline (`Duration::ZERO` = socket timeout
    /// governs).
    pub fn with_request_deadline(mut self, deadline: Duration) -> Self {
        self.request_deadline = deadline;
        self
    }

    /// Caps accepted response frames.
    pub fn with_max_frame_bytes(mut self, bytes: usize) -> Self {
        self.max_frame_bytes = bytes;
        self
    }

    /// Sets the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Enables or disables transparent reconnection.
    pub fn with_reconnect(mut self, reconnect: bool) -> Self {
        self.reconnect = reconnect;
        self
    }

    /// Enables or disables the `HELLO` handshake.
    pub fn with_handshake(mut self, handshake: bool) -> Self {
        self.handshake = handshake;
        self
    }

    /// Pins the session's connection lineage (0 = derive one).
    pub fn with_lineage(mut self, lineage: u64) -> Self {
        self.lineage = lineage;
        self
    }

    /// Splices a wire fault-injection plan into every connection.
    pub fn with_fault(mut self, plan: Arc<NetFaultPlan>) -> Self {
        self.fault = Some(plan);
        self
    }
}

/// Counters a resilient [`Session`] keeps about its own recovery actions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Requests re-issued after a retryable outcome or transport failure.
    pub retries: u64,
    /// Connections re-dialed after the transport died.
    pub reconnects: u64,
    /// Writes whose outcome was lost with the transport
    /// ([`ClientError::AckUnknown`]).
    pub ack_unknown: u64,
}

/// One pipelined connection to a silo-net server.
///
/// [`Connection::send`] buffers a request and counts it as in-flight;
/// [`Connection::flush`] pushes the burst onto the wire; [`Connection::recv`]
/// reads the next response (flushing first if needed). [`Connection::call`]
/// is the synchronous send-flush-recv convenience. The server answers in
/// request order, so the `k`-th `recv` after a burst corresponds to the
/// `k`-th `send`.
pub struct Connection {
    reader: BufReader<FaultStream<TcpStream>>,
    writer: BufWriter<FaultStream<TcpStream>>,
    in_flight: usize,
    max_frame_bytes: usize,
    request_deadline: Option<Duration>,
    encode_buf: Vec<u8>,
    frame_buf: Vec<u8>,
}

impl Connection {
    /// Connects to a server with default settings (no timeouts beyond the
    /// 30 s socket defaults, no fault injection).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Connection, ClientError> {
        Connection::connect_with(addr, &ClientConfig::default())
    }

    /// Connects with explicit timeouts and (optionally) fault injection.
    /// Does *not* perform the handshake — [`Session`] owns that.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: &ClientConfig,
    ) -> Result<Connection, ClientError> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        Connection::connect_addrs(&addrs, config)
    }

    fn connect_addrs(addrs: &[SocketAddr], config: &ClientConfig) -> Result<Connection, ClientError> {
        let mut last_err: Option<std::io::Error> = None;
        for addr in addrs {
            let dialed = if config.connect_timeout.is_zero() {
                TcpStream::connect(addr)
            } else {
                TcpStream::connect_timeout(addr, config.connect_timeout)
            };
            match dialed {
                Ok(stream) => return Connection::from_stream(stream, config),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err
            .map(ClientError::from)
            .unwrap_or_else(|| ClientError::Protocol("no socket address resolved".to_string())))
    }

    fn from_stream(stream: TcpStream, config: &ClientConfig) -> Result<Connection, ClientError> {
        stream.set_nodelay(true).ok();
        if !config.read_timeout.is_zero() {
            stream.set_read_timeout(Some(config.read_timeout))?;
        }
        if !config.write_timeout.is_zero() {
            stream.set_write_timeout(Some(config.write_timeout))?;
        }
        let read_half = FaultStream::new(stream.try_clone()?, config.fault.clone())
            .with_socket(stream.try_clone()?);
        let write_half = FaultStream::new(stream.try_clone()?, config.fault.clone())
            .with_socket(stream)
            .with_shared_death(read_half.share_death());
        Ok(Connection {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(write_half),
            in_flight: 0,
            max_frame_bytes: config.max_frame_bytes,
            request_deadline: (!config.request_deadline.is_zero())
                .then_some(config.request_deadline),
            encode_buf: Vec::new(),
            frame_buf: Vec::new(),
        })
    }

    /// Caps the size of response frames this client will accept.
    pub fn set_max_frame_bytes(&mut self, bytes: usize) {
        self.max_frame_bytes = bytes;
    }

    /// Performs the protocol handshake, requesting `features`; returns the
    /// granted feature bits.
    pub fn hello(&mut self, lineage: u64, features: u64) -> Result<u64, ClientError> {
        match self.call(&Request::Hello { version: PROTOCOL_VERSION, features, lineage })? {
            Response::HelloOk { version: _, features } => Ok(features),
            other => Err(unexpected("HelloOk", &other)),
        }
    }

    /// Queues one request into the connection's write buffer without
    /// flushing. Pair each `send` with a later [`Connection::recv`].
    pub fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        self.encode_buf.clear();
        protocol::encode_request(&mut self.encode_buf, req);
        protocol::write_frame(&mut self.writer, &self.encode_buf)?;
        self.in_flight += 1;
        Ok(())
    }

    /// Pushes every buffered request onto the wire.
    pub fn flush(&mut self) -> Result<(), ClientError> {
        self.writer.flush()?;
        Ok(())
    }

    /// Reads the next response, flushing buffered requests first. Returns
    /// [`ClientError::Closed`] if the server hung up with responses
    /// outstanding. A typed error frame is returned as `Ok(Response::Error)`
    /// — use [`Connection::recv_result`] to turn those into
    /// [`ClientError::Server`].
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        if self.in_flight == 0 {
            return Err(ClientError::Protocol("recv with no request in flight".to_string()));
        }
        self.flush()?;
        if !protocol::read_frame_deadline(
            &mut self.reader,
            &mut self.frame_buf,
            self.max_frame_bytes,
            self.request_deadline,
        )? {
            return Err(ClientError::Closed);
        }
        self.in_flight -= 1;
        protocol::decode_response(&self.frame_buf)
            .map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Like [`Connection::recv`], but converts a typed error frame into
    /// [`ClientError::Server`].
    pub fn recv_result(&mut self) -> Result<Response, ClientError> {
        match self.recv()? {
            Response::Error { code, detail } => {
                Err(ClientError::Server(ServerError { code, detail }))
            }
            resp => Ok(resp),
        }
    }

    /// Synchronous request: send, flush, receive (typed errors become
    /// [`ClientError::Server`]).
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.send(req)?;
        self.recv_result()
    }

    /// Requests sent but not yet answered.
    pub fn pending(&self) -> usize {
        self.in_flight
    }
}

/// A durability health report from [`Session::health`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthReport {
    /// The server's durability classification.
    pub health: HealthStatus,
    /// Epochs the durable epoch trails the global epoch by.
    pub lag_epochs: u64,
    /// The server's durable epoch `D`.
    pub durable_epoch: u64,
    /// The server's global epoch `E`.
    pub global_epoch: u64,
}

/// Key-value entries returned by [`Session::scan`], in key order.
pub type ScanEntries = Vec<(Vec<u8>, Vec<u8>)>;

/// Source of process-unique lineage ids.
static LINEAGE_COUNTER: AtomicU64 = AtomicU64::new(1);

fn derive_lineage() -> u64 {
    let counter = LINEAGE_COUNTER.fetch_add(1, Ordering::Relaxed) & 0xFFFF_FFFF;
    ((std::process::id() as u64) << 32) | counter
}

/// The remote counterpart of the embedded `silo_core::Session`: each method
/// is one transaction against the server, synchronous and in the same
/// vocabulary (`get`/`put`/`insert`/`delete`/`scan`/`transact`).
///
/// With [`ClientConfig::resilient`] the session owns the whole failure
/// lifecycle: timeouts, typed-error retries, reconnection, and exactly-once
/// write replay via request tokens (see the crate docs).
///
/// For throughput, use [`Session::connection`]-level pipelining (or the
/// `fig_net` load generator's pattern): issue a burst of `send`s, then drain
/// with `recv`.
pub struct Session {
    conn: Option<Connection>,
    addrs: Vec<SocketAddr>,
    config: ClientConfig,
    lineage: u64,
    /// Whether the server granted request tokens on the live connection.
    tokens: bool,
    next_token: u64,
    connected_once: bool,
    stats: ClientStats,
    /// xorshift64* state for backoff jitter.
    rng: u64,
}

impl Session {
    /// Connects a new session with the default (non-resilient) config.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Session, ClientError> {
        Session::connect_with(addr, ClientConfig::default())
    }

    /// Connects a new session with an explicit [`ClientConfig`].
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: ClientConfig,
    ) -> Result<Session, ClientError> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        if addrs.is_empty() {
            return Err(ClientError::Protocol("no socket address resolved".to_string()));
        }
        let lineage = match config.lineage {
            0 if config.reconnect => derive_lineage(),
            other => other,
        };
        let mut session = Session {
            conn: None,
            addrs,
            lineage,
            tokens: false,
            next_token: 0,
            connected_once: false,
            stats: ClientStats::default(),
            rng: lineage | 0x9E37_79B9_7F4A_7C15,
            config,
        };
        session.redial()?;
        Ok(session)
    }

    /// Wraps an existing connection (no handshake, no reconnection — the
    /// session cannot re-dial an address it never knew).
    pub fn from_connection(conn: Connection) -> Session {
        Session {
            conn: Some(conn),
            addrs: Vec::new(),
            config: ClientConfig { handshake: false, ..ClientConfig::default() },
            lineage: 0,
            tokens: false,
            next_token: 0,
            connected_once: true,
            stats: ClientStats::default(),
            rng: 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// The underlying connection, for explicit pipelining.
    ///
    /// # Panics
    ///
    /// Panics if the connection previously died and has not been re-dialed
    /// by a [`Session`] verb since.
    pub fn connection(&mut self) -> &mut Connection {
        self.conn.as_mut().expect("session connection is down; issue a request to reconnect")
    }

    /// The session's recovery counters.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Whether the live connection negotiated request tokens.
    pub fn tokens_negotiated(&self) -> bool {
        self.tokens
    }

    /// Resolves a table name to an id, creating the table if missing.
    pub fn open_table(&mut self, name: &str) -> Result<u32, ClientError> {
        match self.call(Request::OpenTable { name: name.to_string() })? {
            Response::TableId { id } => Ok(id),
            other => Err(unexpected("TableId", &other)),
        }
    }

    /// Reads one key (a single-operation transaction).
    pub fn get(&mut self, table: u32, key: &[u8]) -> Result<Option<Vec<u8>>, ClientError> {
        match self.call(Request::Get { table, key: key.to_vec() })? {
            Response::Value { value } => Ok(value),
            other => Err(unexpected("Value", &other)),
        }
    }

    /// Upserts one key. `Ok(())` means *durably committed* when the server
    /// runs with a durability subsystem.
    pub fn put(&mut self, table: u32, key: &[u8], value: &[u8]) -> Result<(), ClientError> {
        match self.call(Request::Put {
            table,
            key: key.to_vec(),
            value: value.to_vec(),
        })? {
            Response::Ok => Ok(()),
            other => Err(unexpected("Ok", &other)),
        }
    }

    /// Inserts one key; a duplicate key surfaces as a typed `Aborted` error.
    pub fn insert(&mut self, table: u32, key: &[u8], value: &[u8]) -> Result<(), ClientError> {
        match self.call(Request::Insert {
            table,
            key: key.to_vec(),
            value: value.to_vec(),
        })? {
            Response::Ok => Ok(()),
            other => Err(unexpected("Ok", &other)),
        }
    }

    /// Deletes one key (idempotent).
    pub fn delete(&mut self, table: u32, key: &[u8]) -> Result<(), ClientError> {
        match self.call(Request::Delete { table, key: key.to_vec() })? {
            Response::Ok => Ok(()),
            other => Err(unexpected("Ok", &other)),
        }
    }

    /// Range scan `[start, end)`, at most `limit` entries (`None` = all).
    pub fn scan(
        &mut self,
        table: u32,
        start: &[u8],
        end: Option<&[u8]>,
        limit: Option<u32>,
    ) -> Result<ScanEntries, ClientError> {
        match self.call(Request::Scan {
            table,
            start: start.to_vec(),
            end: end.map(<[u8]>::to_vec),
            limit: limit.unwrap_or(0),
        })? {
            Response::Entries { entries } => Ok(entries),
            other => Err(unexpected("Entries", &other)),
        }
    }

    /// Executes a multi-operation transaction atomically on the server and
    /// returns the values observed by its `get`s, in operation order. If the
    /// transaction wrote, success means the writes are durable.
    ///
    /// ```no_run
    /// # use silo_client::{Session, TxnBuilder};
    /// # let mut session = Session::connect("127.0.0.1:4000").unwrap();
    /// # let accounts = session.open_table("accounts").unwrap();
    /// let reads = session.transact(
    ///     TxnBuilder::new()
    ///         .get(accounts, b"alice")
    ///         .put(accounts, b"bob", b"250"),
    /// ).unwrap();
    /// let alice = reads[0].as_deref();
    /// # let _ = alice;
    /// ```
    pub fn transact(&mut self, txn: TxnBuilder) -> Result<Vec<Option<Vec<u8>>>, ClientError> {
        match self.call(Request::Txn { ops: txn.ops })? {
            Response::TxnOk { reads } => Ok(reads),
            other => Err(unexpected("TxnOk", &other)),
        }
    }

    /// Probes the server's durability health.
    pub fn health(&mut self) -> Result<HealthReport, ClientError> {
        match self.call(Request::Health)? {
            Response::Health { health, lag_epochs, durable_epoch, global_epoch } => {
                Ok(HealthReport { health, lag_epochs, durable_epoch, global_epoch })
            }
            other => Err(unexpected("Health", &other)),
        }
    }

    // -- the resilience core ------------------------------------------------

    /// Issues one request through the session's full retry/reconnect/replay
    /// machinery. Writes are wrapped in a fresh request token when the
    /// handshake negotiated tokens, making their replay after a reconnect
    /// exactly-once.
    fn call(&mut self, req: Request) -> Result<Response, ClientError> {
        let is_write = req.is_write();
        let req = if is_write && self.tokens {
            self.next_token += 1;
            Request::Tokenized { token: self.next_token, req: Box::new(req) }
        } else {
            req
        };
        let tokenized = matches!(req, Request::Tokenized { .. });
        let policy = self.config.retry.clone();
        let mut attempt: u32 = 0;
        let mut backoff = policy.initial_backoff.max(Duration::from_millis(1));
        loop {
            let (err, sent) = match self.try_call(&req) {
                Ok(resp) => return Ok(resp),
                Err(pair) => pair,
            };
            if err.is_transport() {
                self.conn = None;
            }
            let degraded = matches!(err.server_code(), Some(ErrorCode::DurabilityDegraded));
            let retryable = match &err {
                ClientError::Server(se) => match se.code {
                    ErrorCode::Aborted => policy.retry_aborts,
                    ErrorCode::ServerBusy | ErrorCode::DurabilityDegraded => true,
                    _ => false,
                },
                _ if !sent => self.config.reconnect,
                _ if !is_write || tokenized => self.config.reconnect,
                _ => {
                    // An untokenized write died in flight: its outcome is
                    // unknowable and a blind retry could double-apply. Only
                    // surface the typed uncertainty when this session would
                    // otherwise have retried — a plain session keeps the
                    // plain transport error.
                    if self.config.reconnect {
                        self.stats.ack_unknown += 1;
                        return Err(ClientError::AckUnknown(Box::new(err)));
                    }
                    false
                }
            };
            if !retryable || attempt >= policy.max_retries {
                return Err(err);
            }
            attempt += 1;
            self.stats.retries += 1;
            if degraded && !policy.wait_for_health.is_zero() {
                self.await_health(policy.wait_for_health);
            } else {
                self.sleep_backoff(&mut backoff, &policy);
            }
        }
    }

    /// One attempt: ensure a live (handshaken) connection, then call.
    /// The error carries whether the request may have reached the server.
    fn try_call(&mut self, req: &Request) -> Result<Response, (ClientError, bool)> {
        if self.conn.is_none() {
            self.redial().map_err(|e| (e, false))?;
        }
        let conn = self.conn.as_mut().expect("redial populated the connection");
        conn.call(req).map_err(|e| (e, true))
    }

    /// Dials (or re-dials) and re-runs the handshake.
    fn redial(&mut self) -> Result<(), ClientError> {
        if self.addrs.is_empty() {
            // A `from_connection` session has no address to return to.
            return Err(ClientError::Closed);
        }
        let mut conn = Connection::connect_addrs(&self.addrs, &self.config)?;
        if self.config.handshake {
            let want = if self.config.reconnect && self.lineage != 0 {
                FEATURE_REQUEST_TOKENS
            } else {
                0
            };
            let granted = conn.hello(self.lineage, want)?;
            self.tokens = granted & FEATURE_REQUEST_TOKENS != 0 && self.lineage != 0;
        }
        if self.connected_once {
            self.stats.reconnects += 1;
        }
        self.connected_once = true;
        self.conn = Some(conn);
        Ok(())
    }

    /// Polls the server's health until it reports `Healthy` or the budget
    /// runs out (used before retrying a `DurabilityDegraded` shed).
    fn await_health(&mut self, budget: Duration) {
        let deadline = Instant::now() + budget;
        loop {
            if let Ok(Response::Health { health: HealthStatus::Healthy, .. }) =
                self.try_call(&Request::Health).map_err(|(e, _)| {
                    if e.is_transport() {
                        self.conn = None;
                    }
                    e
                })
            {
                return;
            }
            if Instant::now() >= deadline {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    fn sleep_backoff(&mut self, backoff: &mut Duration, policy: &RetryPolicy) {
        let mut sleep = *backoff;
        if policy.jitter {
            // xorshift64*: jitter within [backoff/2, backoff].
            let mut x = self.rng;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.rng = x;
            let r = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
            let half = sleep / 2;
            let span_micros = half.as_micros().max(1) as u64;
            sleep = half + Duration::from_micros(r % span_micros);
        }
        std::thread::sleep(sleep);
        *backoff = (*backoff * 2).min(policy.max_backoff.max(policy.initial_backoff));
    }
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    ClientError::Protocol(format!("expected {wanted} response, got {got:?}"))
}

/// Builds the operation list for [`Session::transact`].
#[derive(Debug, Default, Clone)]
pub struct TxnBuilder {
    ops: Vec<TxnOp>,
}

impl TxnBuilder {
    /// An empty transaction.
    pub fn new() -> TxnBuilder {
        TxnBuilder::default()
    }

    /// Adds a read; its result lands in the corresponding slot of the
    /// vector [`Session::transact`] returns.
    pub fn get(mut self, table: u32, key: &[u8]) -> Self {
        self.ops.push(TxnOp::Get { table, key: key.to_vec() });
        self
    }

    /// Adds an upsert.
    pub fn put(mut self, table: u32, key: &[u8], value: &[u8]) -> Self {
        self.ops.push(TxnOp::Put { table, key: key.to_vec(), value: value.to_vec() });
        self
    }

    /// Adds an insert (duplicate key aborts the whole transaction).
    pub fn insert(mut self, table: u32, key: &[u8], value: &[u8]) -> Self {
        self.ops.push(TxnOp::Insert { table, key: key.to_vec(), value: value.to_vec() });
        self
    }

    /// Adds a delete.
    pub fn delete(mut self, table: u32, key: &[u8]) -> Self {
        self.ops.push(TxnOp::Delete { table, key: key.to_vec() });
        self
    }

    /// The operations queued so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no operations are queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}
