//! Client-against-server integration: the session vocabulary, explicit
//! pipelining, durable acknowledgements riding group commit, and the
//! resilience stack (retries, reconnection, token replay, `AckUnknown`).

use std::sync::Arc;
use std::time::Duration;

use silo_client::{
    ClientConfig, ClientError, Connection, ErrorCode, HealthStatus, RetryPolicy, Session,
    TxnBuilder,
};
use silo_core::{Database, EpochConfig, SiloConfig};
use silo_log::{LogConfig, SiloLogger};
use silo_net::protocol::{Request, Response};
use silo_net::{NetFaultKind, NetFaultPlan, NetFaultSite, Server, ServerConfig};

fn start_durable_server() -> (Arc<Database>, Arc<SiloLogger>, Server) {
    let config = SiloConfig::default()
        .with_epoch(EpochConfig { epoch_interval: Duration::from_millis(1), ..Default::default() })
        .with_spawn_epoch_advancer(true);
    let db = Database::open(config);
    let logger = SiloLogger::install(LogConfig::in_memory(2), &db).unwrap();
    let server = Server::start(
        Arc::clone(&db),
        Some(Arc::clone(&logger)),
        ServerConfig::default().with_workers(2),
    )
    .unwrap();
    (db, logger, server)
}

#[test]
fn session_vocabulary_end_to_end() {
    let (_db, logger, mut server) = start_durable_server();
    let mut session = Session::connect(server.local_addr()).unwrap();

    let kv = session.open_table("kv").unwrap();
    session.put(kv, b"alice", b"100").unwrap();
    assert_eq!(session.get(kv, b"alice").unwrap(), Some(b"100".to_vec()));
    assert_eq!(session.get(kv, b"nobody").unwrap(), None);

    session.insert(kv, b"bob", b"200").unwrap();
    let err = session.insert(kv, b"bob", b"201").unwrap_err();
    assert_eq!(err.server_code(), Some(ErrorCode::Aborted));
    assert!(err.is_retryable());

    let reads = session
        .transact(TxnBuilder::new().get(kv, b"alice").put(kv, b"carol", b"300").get(kv, b"carol"))
        .unwrap();
    assert_eq!(reads, vec![Some(b"100".to_vec()), Some(b"300".to_vec())]);

    let entries = session.scan(kv, b"", None, None).unwrap();
    assert_eq!(
        entries.iter().map(|(k, _)| k.as_slice()).collect::<Vec<_>>(),
        vec![&b"alice"[..], b"bob", b"carol"]
    );

    session.delete(kv, b"bob").unwrap();
    assert_eq!(session.get(kv, b"bob").unwrap(), None);

    let health = session.health().unwrap();
    assert_eq!(health.health, HealthStatus::Healthy);

    // Every acked write's epoch is durable: the logger's watermark must have
    // caught up with the last ack by the time the ack arrived.
    drop(session);
    server.shutdown();
    assert!(logger.durable_epoch() >= 1);
    let stats = server.stats();
    assert!(stats.writes_acked >= 4, "acked {}", stats.writes_acked);
    assert_eq!(stats.writes_shed_degraded, 0);
    assert_eq!(stats.protocol_errors, 0);
}

#[test]
fn pipelined_burst_drains_in_order() {
    let (_db, logger, mut server) = start_durable_server();
    let mut conn = Connection::connect(server.local_addr()).unwrap();

    let table = match conn.call(&Request::OpenTable { name: "burst".to_string() }).unwrap() {
        Response::TableId { id } => id,
        other => panic!("unexpected {other:?}"),
    };

    // Fire a burst of writes without reading a single response...
    const N: usize = 256;
    for i in 0..N {
        conn.send(&Request::Put {
            table,
            key: format!("k{i:04}").into_bytes(),
            value: format!("v{i}").into_bytes(),
        })
        .unwrap();
    }
    assert_eq!(conn.pending(), N);
    // ...then drain them. Every ack is durable, and order matches issue
    // order (acks are indistinguishable here, so check via follow-up gets).
    for _ in 0..N {
        match conn.recv_result().unwrap() {
            Response::Ok => {}
            other => panic!("unexpected {other:?}"),
        }
    }
    assert_eq!(conn.pending(), 0);

    // Interleaved reads come back positionally.
    for i in (0..N).step_by(17) {
        conn.send(&Request::Get { table, key: format!("k{i:04}").into_bytes() }).unwrap();
    }
    let mut expected = (0..N).step_by(17);
    while conn.pending() > 0 {
        let i = expected.next().unwrap();
        match conn.recv_result().unwrap() {
            Response::Value { value } => {
                assert_eq!(value, Some(format!("v{i}").into_bytes()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    let sync_calls_per_ack =
        logger.stats().sync_calls as f64 / server.stats().writes_acked.max(1) as f64;
    server.shutdown();
    // The whole point of pipelining over group commit: the burst shares
    // epoch boundaries, so syncs per acked write collapse far below one.
    // (In-memory sinks count a "sync" per durable-bound publish round.)
    assert!(
        sync_calls_per_ack < 0.5,
        "expected amortized group commit, got {sync_calls_per_ack} syncs per acked write"
    );
}

/// A retry policy tuned for tests: fast, deterministic backoff.
fn fast_retry(max_retries: u32) -> RetryPolicy {
    RetryPolicy::default()
        .with_max_retries(max_retries)
        .with_initial_backoff(Duration::from_millis(1))
        .with_max_backoff(Duration::from_millis(5))
        .with_jitter(false)
}

#[test]
fn resilient_session_is_inert_on_a_healthy_server() {
    let (_db, _logger, mut server) = start_durable_server();
    let mut session =
        Session::connect_with(server.local_addr(), ClientConfig::resilient()).unwrap();
    assert!(session.tokens_negotiated());
    let kv = session.open_table("kv").unwrap();
    session.put(kv, b"k", b"v").unwrap();
    session.insert(kv, b"k2", b"v2").unwrap();
    assert_eq!(session.get(kv, b"k").unwrap(), Some(b"v".to_vec()));
    let stats = session.stats();
    assert_eq!((stats.retries, stats.reconnects, stats.ack_unknown), (0, 0, 0));
    drop(session);
    server.shutdown();
    assert_eq!(server.stats().token_replays, 0);
    assert_eq!(server.stats().connections_reset, 0);
}

#[test]
fn deterministic_aborts_burn_the_retry_budget_then_surface() {
    let (_db, _logger, server) = start_durable_server();
    let config = ClientConfig::resilient().with_retry(fast_retry(2));
    let mut session = Session::connect_with(server.local_addr(), config).unwrap();
    let kv = session.open_table("kv").unwrap();
    session.insert(kv, b"dup", b"1").unwrap();
    // A duplicate insert aborts deterministically: the policy retries it
    // (an OCC abort is normally transient) until the budget runs out, then
    // surfaces the typed abort.
    let err = session.insert(kv, b"dup", b"2").unwrap_err();
    assert_eq!(err.server_code(), Some(ErrorCode::Aborted));
    assert_eq!(session.stats().retries, 2);
}

#[test]
fn lost_ack_is_replayed_from_the_token_window_exactly_once() {
    let (_db, _logger, mut server) = start_durable_server();
    // Reads per connection: 1 = HELLO response, 2 = open_table response,
    // 3 = the insert's ack — which this plan replaces with a connection
    // reset, so the client never sees the outcome of an executed write.
    let fault = Arc::new(
        NetFaultPlan::new().fail_at(NetFaultSite::Read, 3, NetFaultKind::Reset),
    );
    let config = ClientConfig::resilient()
        .with_retry(fast_retry(4))
        .with_fault(Arc::clone(&fault));
    let mut session = Session::connect_with(server.local_addr(), config).unwrap();
    let kv = session.open_table("kv").unwrap();
    // The first attempt executes on the server; its ack dies on the wire.
    // The reconnect replays the same token and must get the *stored* ack —
    // not a duplicate-key abort from re-executing the insert.
    session.insert(kv, b"once", b"v").unwrap();
    assert_eq!(fault.injected(), 1, "the scheduled reset fired");
    assert_eq!(session.stats().reconnects, 1);
    assert_eq!(session.get(kv, b"once").unwrap(), Some(b"v".to_vec()));
    drop(session);
    server.shutdown();
    assert_eq!(server.stats().token_replays, 1);
}

#[test]
fn torn_request_is_resent_fresh_after_reconnecting() {
    let (_db, _logger, mut server) = start_durable_server();
    // Writes per connection: 1 = HELLO, 2 = open_table, 3 = the insert —
    // torn mid-frame, so the server never sees a complete request.
    let fault = Arc::new(
        NetFaultPlan::new().fail_at(NetFaultSite::Write, 3, NetFaultKind::Torn),
    );
    let config = ClientConfig::resilient()
        .with_retry(fast_retry(4))
        .with_fault(Arc::clone(&fault));
    let mut session = Session::connect_with(server.local_addr(), config).unwrap();
    let kv = session.open_table("kv").unwrap();
    session.insert(kv, b"torn", b"v").unwrap();
    assert_eq!(fault.injected(), 1);
    assert_eq!(session.stats().reconnects, 1);
    assert_eq!(session.get(kv, b"torn").unwrap(), Some(b"v".to_vec()));
    drop(session);
    server.shutdown();
    // The first attempt never reached the server whole: the resend executed
    // fresh rather than replaying a stored ack.
    assert_eq!(server.stats().token_replays, 0);
}

#[test]
fn untokenized_in_flight_write_surfaces_ack_unknown() {
    let (_db, _logger, server) = start_durable_server();
    // Reads per connection (no handshake): 1 = open_table response, 2 = the
    // put's ack, lost to a reset.
    let fault = Arc::new(
        NetFaultPlan::new().fail_at(NetFaultSite::Read, 2, NetFaultKind::Reset),
    );
    // Reconnection is on but the handshake (and with it, tokens) is off:
    // retrying the lost-ack write blindly could double-apply it, so the
    // session must refuse and surface the typed uncertainty instead.
    let config = ClientConfig::resilient()
        .with_retry(fast_retry(4))
        .with_handshake(false)
        .with_fault(Arc::clone(&fault));
    let mut session = Session::connect_with(server.local_addr(), config).unwrap();
    assert!(!session.tokens_negotiated());
    let kv = session.open_table("kv").unwrap();
    match session.put(kv, b"k", b"v") {
        Err(ClientError::AckUnknown(_)) => {}
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(session.stats().ack_unknown, 1);
    // The session stays usable: the next (read) request reconnects.
    let _ = session.get(kv, b"k").unwrap();
    assert_eq!(session.stats().reconnects, 1);
}

#[test]
fn reads_ride_through_connection_resets_transparently() {
    let (_db, _logger, server) = start_durable_server();
    let fault = Arc::new(
        NetFaultPlan::new().fail_at(NetFaultSite::Read, 3, NetFaultKind::Reset),
    );
    let config = ClientConfig::resilient()
        .with_retry(fast_retry(4))
        .with_fault(Arc::clone(&fault));
    let mut session = Session::connect_with(server.local_addr(), config).unwrap();
    let kv = session.open_table("kv").unwrap();
    // The get's response (read #3) dies; reads are idempotent, so the
    // session just reconnects and re-asks.
    assert_eq!(session.get(kv, b"absent").unwrap(), None);
    assert_eq!(session.stats().reconnects, 1);
    assert_eq!(fault.injected(), 1);
}

#[test]
fn recv_without_send_is_an_error() {
    let (_db, _logger, server) = start_durable_server();
    let mut conn = Connection::connect(server.local_addr()).unwrap();
    match conn.recv() {
        Err(ClientError::Protocol(_)) => {}
        other => panic!("unexpected {other:?}"),
    }
}
