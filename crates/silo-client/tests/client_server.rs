//! Client-against-server integration: the session vocabulary, explicit
//! pipelining, and durable acknowledgements riding group commit.

use std::sync::Arc;
use std::time::Duration;

use silo_client::{ClientError, Connection, ErrorCode, HealthStatus, Session, TxnBuilder};
use silo_core::{Database, EpochConfig, SiloConfig};
use silo_log::{LogConfig, SiloLogger};
use silo_net::protocol::{Request, Response};
use silo_net::{Server, ServerConfig};

fn start_durable_server() -> (Arc<Database>, Arc<SiloLogger>, Server) {
    let config = SiloConfig::default()
        .with_epoch(EpochConfig { epoch_interval: Duration::from_millis(1), ..Default::default() })
        .with_spawn_epoch_advancer(true);
    let db = Database::open(config);
    let logger = SiloLogger::install(LogConfig::in_memory(2), &db).unwrap();
    let server = Server::start(
        Arc::clone(&db),
        Some(Arc::clone(&logger)),
        ServerConfig::default().with_workers(2),
    )
    .unwrap();
    (db, logger, server)
}

#[test]
fn session_vocabulary_end_to_end() {
    let (_db, logger, mut server) = start_durable_server();
    let mut session = Session::connect(server.local_addr()).unwrap();

    let kv = session.open_table("kv").unwrap();
    session.put(kv, b"alice", b"100").unwrap();
    assert_eq!(session.get(kv, b"alice").unwrap(), Some(b"100".to_vec()));
    assert_eq!(session.get(kv, b"nobody").unwrap(), None);

    session.insert(kv, b"bob", b"200").unwrap();
    let err = session.insert(kv, b"bob", b"201").unwrap_err();
    assert_eq!(err.server_code(), Some(ErrorCode::Aborted));
    assert!(err.is_retryable());

    let reads = session
        .transact(TxnBuilder::new().get(kv, b"alice").put(kv, b"carol", b"300").get(kv, b"carol"))
        .unwrap();
    assert_eq!(reads, vec![Some(b"100".to_vec()), Some(b"300".to_vec())]);

    let entries = session.scan(kv, b"", None, None).unwrap();
    assert_eq!(
        entries.iter().map(|(k, _)| k.as_slice()).collect::<Vec<_>>(),
        vec![&b"alice"[..], b"bob", b"carol"]
    );

    session.delete(kv, b"bob").unwrap();
    assert_eq!(session.get(kv, b"bob").unwrap(), None);

    let health = session.health().unwrap();
    assert_eq!(health.health, HealthStatus::Healthy);

    // Every acked write's epoch is durable: the logger's watermark must have
    // caught up with the last ack by the time the ack arrived.
    drop(session);
    server.shutdown();
    assert!(logger.durable_epoch() >= 1);
    let stats = server.stats();
    assert!(stats.writes_acked >= 4, "acked {}", stats.writes_acked);
    assert_eq!(stats.writes_shed_degraded, 0);
    assert_eq!(stats.protocol_errors, 0);
}

#[test]
fn pipelined_burst_drains_in_order() {
    let (_db, logger, mut server) = start_durable_server();
    let mut conn = Connection::connect(server.local_addr()).unwrap();

    let table = match conn.call(&Request::OpenTable { name: "burst".to_string() }).unwrap() {
        Response::TableId { id } => id,
        other => panic!("unexpected {other:?}"),
    };

    // Fire a burst of writes without reading a single response...
    const N: usize = 256;
    for i in 0..N {
        conn.send(&Request::Put {
            table,
            key: format!("k{i:04}").into_bytes(),
            value: format!("v{i}").into_bytes(),
        })
        .unwrap();
    }
    assert_eq!(conn.pending(), N);
    // ...then drain them. Every ack is durable, and order matches issue
    // order (acks are indistinguishable here, so check via follow-up gets).
    for _ in 0..N {
        match conn.recv_result().unwrap() {
            Response::Ok => {}
            other => panic!("unexpected {other:?}"),
        }
    }
    assert_eq!(conn.pending(), 0);

    // Interleaved reads come back positionally.
    for i in (0..N).step_by(17) {
        conn.send(&Request::Get { table, key: format!("k{i:04}").into_bytes() }).unwrap();
    }
    let mut expected = (0..N).step_by(17);
    while conn.pending() > 0 {
        let i = expected.next().unwrap();
        match conn.recv_result().unwrap() {
            Response::Value { value } => {
                assert_eq!(value, Some(format!("v{i}").into_bytes()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    let sync_calls_per_ack =
        logger.stats().sync_calls as f64 / server.stats().writes_acked.max(1) as f64;
    server.shutdown();
    // The whole point of pipelining over group commit: the burst shares
    // epoch boundaries, so syncs per acked write collapse far below one.
    // (In-memory sinks count a "sync" per durable-bound publish round.)
    assert!(
        sync_calls_per_ack < 0.5,
        "expected amortized group commit, got {sync_calls_per_ack} syncs per acked write"
    );
}

#[test]
fn recv_without_send_is_an_error() {
    let (_db, _logger, server) = start_durable_server();
    let mut conn = Connection::connect(server.local_addr()).unwrap();
    match conn.recv() {
        Err(ClientError::Protocol(_)) => {}
        other => panic!("unexpected {other:?}"),
    }
}
