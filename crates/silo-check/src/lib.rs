//! # silo-check — black-box history recording and serializability checking
//!
//! The engine's headline claim is serializability under high concurrency
//! (paper §3). This crate verifies that claim on *actual executions* rather
//! than hand-picked invariants:
//!
//! * [`history`] — the recording side: a [`HistoryRecorder`] installed on a
//!   database collects, per worker session, every transaction's reads (with
//!   the TID of the version observed), writes, and commit/abort outcome.
//!   Workers buffer locally and hand their whole session over when they
//!   finish, so recording adds no shared-memory traffic to the hot path and
//!   the *disabled* recorder costs one relaxed atomic load per transaction.
//! * [`checker`] — the verification side: [`check_serializability`] rebuilds
//!   the multi-version serialization graph from the recorded write-read
//!   relationships plus TID order and reports either statistics or a minimal
//!   counterexample cycle.
//!
//! The crate deliberately depends only on `silo-tid` so the engine
//! (`silo-core`) can feed the recorder from inside its commit path without a
//! dependency cycle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
pub mod history;

pub use checker::{
    check_serializability, CheckReport, CycleStep, EdgeKind, Violation,
};
pub use history::{
    dump_sessions, HistoryRecorder, HistorySession, ReadView, SessionHistory, TxnView, WriteView,
};
