//! Recorded transaction histories.
//!
//! A history is a set of **sessions** (one per worker), each an ordered list
//! of transactions. Every transaction carries:
//!
//! * its position in the session (`txn_id`),
//! * its commit TID (`None` for aborted transactions),
//! * its reads as `(table, key, observed_tid)` — `observed_tid` is the TID of
//!   the record version the read returned, `0` for the initial (never
//!   written) version,
//! * its writes as `(table, key, delete)`.
//!
//! Storage is flattened: one growable byte arena per session holds every key,
//! and reads/writes are `(offset, len)` ranges into it. Recording a
//! transaction therefore performs only amortized `Vec` growth — no per-read
//! or per-key allocations — which is what lets the engine keep its zero
//! steady-state-allocation property with recording enabled, and its
//! *zero-cost* property with recording disabled.
//!
//! Commit TIDs are **not** globally unique in Silo (workers generate them
//! decentrally, §4.2); two transactions on different workers may commit with
//! equal TIDs as long as their write-sets are disjoint. Transaction identity
//! is therefore `(session, txn_id)`; per-key version TIDs *are* unique, which
//! is all the checker needs.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use silo_tid::Tid;

/// Identifier of a table, mirroring `silo_core::TableId` (this crate cannot
/// depend on `silo-core`, which depends on it).
pub type TableId = u32;

/// One recorded read: the version of `key` this transaction observed.
#[derive(Debug, Clone, Copy)]
struct ReadRec {
    table: TableId,
    key: (u32, u32),
    /// Raw TID of the version read; `0` for the initial (absent) version.
    observed: u64,
}

/// One recorded write.
#[derive(Debug, Clone, Copy)]
struct WriteRec {
    table: TableId,
    key: (u32, u32),
    delete: bool,
}

/// One recorded transaction: outcome plus ranges into the session's flat
/// read/write arrays.
#[derive(Debug, Clone, Copy)]
struct TxnRec {
    /// Raw commit TID; meaningless when `committed` is false.
    tid: u64,
    committed: bool,
    reads: (u32, u32),
    writes: (u32, u32),
}

/// The recorded history of one worker session.
#[derive(Debug, Default)]
pub struct SessionHistory {
    session: usize,
    txns: Vec<TxnRec>,
    reads: Vec<ReadRec>,
    writes: Vec<WriteRec>,
    bytes: Vec<u8>,
    /// Read/write watermarks of the currently open transaction.
    open: Option<(u32, u32)>,
}

impl SessionHistory {
    /// Creates an empty session history.
    pub fn new(session: usize) -> Self {
        SessionHistory {
            session,
            ..Default::default()
        }
    }

    /// The session (worker) id this history belongs to.
    pub fn session(&self) -> usize {
        self.session
    }

    /// Number of recorded (finished) transactions.
    pub fn len(&self) -> usize {
        self.txns.len()
    }

    /// Whether the session recorded no transactions.
    pub fn is_empty(&self) -> bool {
        self.txns.is_empty()
    }

    /// Opens a new transaction. Reads and writes recorded until the matching
    /// [`SessionHistory::finish_txn`] belong to it.
    pub fn begin_txn(&mut self) {
        debug_assert!(self.open.is_none(), "unfinished recorded transaction");
        self.open = Some((self.reads.len() as u32, self.writes.len() as u32));
    }

    fn intern(&mut self, key: &[u8]) -> (u32, u32) {
        let start = self.bytes.len() as u32;
        self.bytes.extend_from_slice(key);
        (start, key.len() as u32)
    }

    /// Records one read of the open transaction. `observed_tid` is the raw
    /// TID of the version the read returned (`0` = initial version).
    pub fn record_read(&mut self, table: TableId, key: &[u8], observed_tid: u64) {
        debug_assert!(self.open.is_some(), "read recorded outside a transaction");
        let key = self.intern(key);
        self.reads.push(ReadRec {
            table,
            key,
            observed: observed_tid,
        });
    }

    /// Records one write of the open transaction.
    pub fn record_write(&mut self, table: TableId, key: &[u8], delete: bool) {
        debug_assert!(self.open.is_some(), "write recorded outside a transaction");
        let key = self.intern(key);
        self.writes.push(WriteRec { table, key, delete });
    }

    /// Closes the open transaction with its outcome. `tid` must be `Some` for
    /// committed transactions and `None` for aborts.
    pub fn finish_txn(&mut self, tid: Option<Tid>, committed: bool) {
        let (reads_start, writes_start) = self.open.take().expect("no open transaction");
        debug_assert_eq!(tid.is_some(), committed);
        self.txns.push(TxnRec {
            tid: tid.unwrap_or(Tid::ZERO).raw(),
            committed,
            reads: (reads_start, self.reads.len() as u32 - reads_start),
            writes: (writes_start, self.writes.len() as u32 - writes_start),
        });
    }

    /// Convenience builder used by tests and canned anomaly histories: push a
    /// whole transaction at once.
    pub fn push_txn(
        &mut self,
        tid: Option<Tid>,
        reads: &[(TableId, &[u8], u64)],
        writes: &[(TableId, &[u8], bool)],
    ) {
        self.begin_txn();
        for &(table, key, observed) in reads {
            self.record_read(table, key, observed);
        }
        for &(table, key, delete) in writes {
            self.record_write(table, key, delete);
        }
        self.finish_txn(tid, tid.is_some());
    }

    /// Iterates over the recorded transactions, in session order.
    pub fn txns(&self) -> impl Iterator<Item = TxnView<'_>> {
        (0..self.txns.len()).map(move |i| self.txn(i))
    }

    /// Returns the `i`-th recorded transaction.
    pub fn txn(&self, i: usize) -> TxnView<'_> {
        let rec = self.txns[i];
        TxnView {
            history: self,
            txn_id: i as u64,
            rec,
        }
    }

    /// Appends a human-readable dump of the session (one line per
    /// transaction) to `out` — the format CI uploads as an artifact when a
    /// check fails.
    pub fn write_text(&self, out: &mut String) {
        use std::fmt::Write;
        let _ = writeln!(out, "session {} ({} txns)", self.session, self.txns.len());
        for txn in self.txns() {
            let outcome = match txn.tid() {
                Some(tid) => format!("commit tid={tid}"),
                None => "abort".to_string(),
            };
            let _ = write!(out, "  txn {} {}:", txn.txn_id(), outcome);
            for r in txn.reads() {
                let _ = write!(
                    out,
                    " r({}:{}@{})",
                    r.table,
                    format_key(r.key),
                    format_tid(r.observed)
                );
            }
            for w in txn.writes() {
                let op = if w.delete { "d" } else { "w" };
                let _ = write!(out, " {}({}:{})", op, w.table, format_key(w.key));
            }
            let _ = writeln!(out);
        }
    }
}

fn format_key(key: &[u8]) -> String {
    if key.iter().all(|b| b.is_ascii_graphic()) && !key.is_empty() {
        String::from_utf8_lossy(key).into_owned()
    } else {
        key.iter().map(|b| format!("{b:02x}")).collect()
    }
}

fn format_tid(raw: u64) -> String {
    if raw == 0 {
        "init".to_string()
    } else {
        Tid::from_raw(raw).to_string()
    }
}

/// Dumps every session of a history as text (for artifacts / debugging).
pub fn dump_sessions(sessions: &[SessionHistory]) -> String {
    let mut out = String::new();
    for s in sessions {
        s.write_text(&mut out);
    }
    out
}

/// A view of one recorded transaction.
#[derive(Clone, Copy)]
pub struct TxnView<'a> {
    history: &'a SessionHistory,
    txn_id: u64,
    rec: TxnRec,
}

impl<'a> TxnView<'a> {
    /// The session this transaction ran in.
    pub fn session(&self) -> usize {
        self.history.session
    }

    /// The transaction's position within its session.
    pub fn txn_id(&self) -> u64 {
        self.txn_id
    }

    /// The commit TID, or `None` if the transaction aborted.
    pub fn tid(&self) -> Option<Tid> {
        self.rec.committed.then(|| Tid::from_raw(self.rec.tid))
    }

    /// Whether the transaction committed.
    pub fn committed(&self) -> bool {
        self.rec.committed
    }

    /// The transaction's reads.
    pub fn reads(&self) -> impl Iterator<Item = ReadView<'a>> + '_ {
        let (start, len) = self.rec.reads;
        self.history.reads[start as usize..(start + len) as usize]
            .iter()
            .map(|r| ReadView {
                table: r.table,
                key: &self.history.bytes[r.key.0 as usize..(r.key.0 + r.key.1) as usize],
                observed: r.observed,
            })
    }

    /// The transaction's writes.
    pub fn writes(&self) -> impl Iterator<Item = WriteView<'a>> + '_ {
        let (start, len) = self.rec.writes;
        self.history.writes[start as usize..(start + len) as usize]
            .iter()
            .map(|w| WriteView {
                table: w.table,
                key: &self.history.bytes[w.key.0 as usize..(w.key.0 + w.key.1) as usize],
                delete: w.delete,
            })
    }
}

impl std::fmt::Debug for TxnView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxnView")
            .field("session", &self.session())
            .field("txn_id", &self.txn_id)
            .field("tid", &self.tid())
            .finish_non_exhaustive()
    }
}

/// One read as seen by the checker.
#[derive(Debug, Clone, Copy)]
pub struct ReadView<'a> {
    /// Table the key belongs to.
    pub table: TableId,
    /// The key read.
    pub key: &'a [u8],
    /// Raw TID of the version observed (`0` = initial version).
    pub observed: u64,
}

/// One write as seen by the checker.
#[derive(Debug, Clone, Copy)]
pub struct WriteView<'a> {
    /// Table the key belongs to.
    pub table: TableId,
    /// The key written.
    pub key: &'a [u8],
    /// Whether the write was a delete.
    pub delete: bool,
}

/// The shared collection point for recorded sessions.
///
/// Install one on a database (`Database::set_history_recorder`); every worker
/// registered afterwards buffers its session locally in a [`HistorySession`]
/// and submits the whole buffer here when it is dropped (or explicitly
/// flushed). The only shared state touched on the transaction hot path is the
/// `enabled` flag — one relaxed load per `begin`.
#[derive(Debug, Default)]
pub struct HistoryRecorder {
    enabled: AtomicBool,
    sessions: Mutex<Vec<SessionHistory>>,
}

impl HistoryRecorder {
    /// Creates a recorder with recording enabled.
    pub fn new() -> Arc<Self> {
        let r = HistoryRecorder::default();
        r.enabled.store(true, Ordering::Relaxed);
        Arc::new(r)
    }

    /// Creates a recorder with recording disabled (workers pay only the
    /// per-transaction flag check until it is enabled).
    pub fn new_disabled() -> Arc<Self> {
        Arc::new(HistoryRecorder::default())
    }

    /// Turns recording on or off. Affects transactions *beginning* after the
    /// store; in-flight transactions keep the decision made at their begin.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether recording is currently enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Submits a finished session buffer. Called by [`HistorySession`];
    /// exposed for tests that build histories by hand.
    pub fn submit(&self, history: SessionHistory) {
        if !history.is_empty() {
            self.sessions.lock().unwrap().push(history);
        }
    }

    /// Takes every submitted session, leaving the recorder empty. Workers
    /// still running keep their local buffers; flush or drop them first for a
    /// complete history.
    pub fn take_sessions(&self) -> Vec<SessionHistory> {
        std::mem::take(&mut self.sessions.lock().unwrap())
    }
}

/// A worker's local recording handle: the shared recorder plus this session's
/// buffer. All recording goes through worker-local memory; the shared
/// recorder is only touched at flush (worker drop) and for the per-begin
/// enabled check.
#[derive(Debug)]
pub struct HistorySession {
    shared: Arc<HistoryRecorder>,
    log: SessionHistory,
}

impl HistorySession {
    /// Creates the handle for worker `session`.
    pub fn new(shared: Arc<HistoryRecorder>, session: usize) -> Self {
        HistorySession {
            shared,
            log: SessionHistory::new(session),
        }
    }

    /// Called at transaction begin. Returns whether this transaction should
    /// record (the decision is cached by the transaction so reads check a
    /// plain bool, not the shared flag).
    pub fn begin_txn(&mut self) -> bool {
        if !self.shared.is_enabled() {
            return false;
        }
        self.log.begin_txn();
        true
    }

    /// Records one read of the current transaction.
    #[inline]
    pub fn record_read(&mut self, table: TableId, key: &[u8], observed_tid: u64) {
        self.log.record_read(table, key, observed_tid);
    }

    /// Records one write of the current transaction.
    #[inline]
    pub fn record_write(&mut self, table: TableId, key: &[u8], delete: bool) {
        self.log.record_write(table, key, delete);
    }

    /// Closes the current transaction with its outcome.
    pub fn finish_txn(&mut self, tid: Option<Tid>, committed: bool) {
        self.log.finish_txn(tid, committed);
    }

    /// Hands the buffered session to the shared recorder (a fresh buffer with
    /// the same session id replaces it).
    pub fn flush(&mut self) {
        let session = self.log.session;
        let log = std::mem::replace(&mut self.log, SessionHistory::new(session));
        self.shared.submit(log);
    }
}

impl Drop for HistorySession {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_view_roundtrip() {
        let mut s = SessionHistory::new(3);
        s.begin_txn();
        s.record_read(0, b"x", 0);
        s.record_write(0, b"x", false);
        s.finish_txn(Some(Tid::new(2, 1)), true);
        s.begin_txn();
        s.record_read(1, b"y", Tid::new(2, 1).raw());
        s.finish_txn(None, false);

        assert_eq!(s.session(), 3);
        assert_eq!(s.len(), 2);
        let t0 = s.txn(0);
        assert_eq!(t0.tid(), Some(Tid::new(2, 1)));
        let reads: Vec<_> = t0.reads().collect();
        assert_eq!(reads.len(), 1);
        assert_eq!(reads[0].key, b"x");
        assert_eq!(reads[0].observed, 0);
        assert_eq!(t0.writes().count(), 1);
        let t1 = s.txn(1);
        assert!(!t1.committed());
        assert_eq!(t1.tid(), None);
        assert_eq!(t1.reads().next().unwrap().observed, Tid::new(2, 1).raw());
    }

    #[test]
    fn recorder_enable_gate_and_submission() {
        let rec = HistoryRecorder::new_disabled();
        let mut session = HistorySession::new(Arc::clone(&rec), 0);
        assert!(!session.begin_txn(), "disabled recorder must not record");
        rec.set_enabled(true);
        assert!(session.begin_txn());
        session.record_write(0, b"k", false);
        session.finish_txn(Some(Tid::new(1, 0)), true);
        drop(session); // flushes
        let sessions = rec.take_sessions();
        assert_eq!(sessions.len(), 1);
        assert_eq!(sessions[0].len(), 1);
        assert!(rec.take_sessions().is_empty());
    }

    #[test]
    fn empty_sessions_are_not_submitted() {
        let rec = HistoryRecorder::new();
        let session = HistorySession::new(Arc::clone(&rec), 0);
        drop(session);
        assert!(rec.take_sessions().is_empty());
    }

    #[test]
    fn text_dump_mentions_outcomes() {
        let mut s = SessionHistory::new(0);
        s.push_txn(Some(Tid::new(1, 0)), &[(0, b"a", 0)], &[(0, b"a", false)]);
        s.push_txn(None, &[(0, b"a", Tid::new(1, 0).raw())], &[]);
        let text = dump_sessions(&[s]);
        assert!(text.contains("commit"));
        assert!(text.contains("abort"));
        assert!(text.contains("r(0:a@init)"));
    }
}
