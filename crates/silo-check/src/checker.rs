//! The serializability checker.
//!
//! [`check_serializability`] rebuilds the multi-version serialization graph
//! of a recorded history and decides whether the committed transactions admit
//! a serial order:
//!
//! 1. **Version orders.** For each key, the committed writers ordered by
//!    commit TID form the version order. This is sound for Silo histories:
//!    a superseding writer's commit TID is always larger than the superseded
//!    version's TID (Phase 2 includes the write-set's current TIDs in
//!    `max_observed`), and the epoch occupies the TID's high bits, so even a
//!    re-insert long after a delete orders correctly. Reads that observed a
//!    TID no committed transaction produced (pre-population performed before
//!    recording started) get a synthetic *external* writer node.
//! 2. **Edges.** Per key: write→write between successive versions;
//!    write→read from a version's writer to each transaction that observed
//!    it; read→write (anti-dependency) from each reader of a version to the
//!    writer of the *next* version. Same-transaction edges are skipped — a
//!    read-modify-write is not a conflict with itself.
//! 3. **TID-order invariants.** Write→read and write→write edges must agree
//!    with TID order (a Silo reader's commit TID exceeds every TID it
//!    observed). Only anti-dependencies may run against TID order — the
//!    paper's §4.2 caveat — so a violation here is reported directly without
//!    any cycle search.
//! 4. **Cycles.** A saturating prefix-closure (Kahn's algorithm) peels every
//!    transaction with no unordered predecessor; an empty residue proves the
//!    history serializable (the peel order is a witness serial order). A
//!    non-empty residue necessarily contains a cycle; an exhaustive
//!    breadth-first search over the (small) residue then extracts a shortest
//!    counterexample cycle to report.
//!
//! One recording caveat, inherited from the engine's deletion pipeline: after
//! the garbage collector *unhooks* a deleted key (§4.9), a later reader finds
//! the key missing from the index and records "initial version", which is
//! indistinguishable from never-written — and a still-later re-insert would
//! then produce a false cycle. Recorded workloads therefore run with GC
//! disabled (`SiloConfig::without_gc()`), as the scenario fuzzer does.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use silo_tid::Tid;

use crate::history::{SessionHistory, TableId};

/// Statistics of a successful check.
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckReport {
    /// Sessions in the history.
    pub sessions: usize,
    /// Transactions recorded (committed + aborted).
    pub txns: usize,
    /// Committed transactions (the graph's nodes).
    pub committed: usize,
    /// Aborted transactions (recorded, excluded from the graph).
    pub aborted: usize,
    /// Recorded reads across all transactions.
    pub reads: usize,
    /// Recorded writes across all transactions.
    pub writes: usize,
    /// Distinct `(table, key)` pairs touched.
    pub keys: usize,
    /// Distinct dependency edges in the serialization graph.
    pub edges: usize,
    /// Synthetic writer nodes for versions observed but not recorded
    /// (pre-population before recording started).
    pub external_versions: usize,
}

impl std::fmt::Display for CheckReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} sessions, {} txns ({} committed, {} aborted), {} reads, {} writes, \
             {} keys, {} edges, {} external versions",
            self.sessions,
            self.txns,
            self.committed,
            self.aborted,
            self.reads,
            self.writes,
            self.keys,
            self.edges,
            self.external_versions
        )
    }
}

/// Kind of a dependency edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// The destination read a version the source wrote.
    WriteRead,
    /// The destination wrote the version succeeding the source's.
    WriteWrite,
    /// Anti-dependency: the source read the version the destination's write
    /// superseded.
    ReadWrite,
}

impl std::fmt::Display for EdgeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeKind::WriteRead => write!(f, "wr"),
            EdgeKind::WriteWrite => write!(f, "ww"),
            EdgeKind::ReadWrite => write!(f, "rw"),
        }
    }
}

/// One hop of a counterexample cycle: a transaction plus the edge leading to
/// the next transaction in the cycle.
#[derive(Debug, Clone)]
pub struct CycleStep {
    /// Session of the transaction, or `None` for a synthetic external writer.
    pub session: Option<usize>,
    /// Transaction id within the session (0 for external writers).
    pub txn_id: u64,
    /// Commit TID (for external writers: the observed TID).
    pub tid: Tid,
    /// Kind of the edge to the next step.
    pub edge: EdgeKind,
    /// Table of the key the edge conflicts on.
    pub table: TableId,
    /// Key the edge conflicts on.
    pub key: Vec<u8>,
}

/// A serializability violation, with enough detail to reproduce and debug.
#[derive(Debug, Clone)]
pub enum Violation {
    /// The serialization graph contains a cycle; `steps` is a shortest one.
    Cycle {
        /// The cycle, each step labelled with the edge to its successor (the
        /// last step's edge leads back to the first).
        steps: Vec<CycleStep>,
    },
    /// Two committed transactions produced the same version TID for one key —
    /// impossible in a correct execution (the second writer's commit TID must
    /// exceed the version it superseded).
    DuplicateVersion {
        /// Table of the duplicated version.
        table: TableId,
        /// Key of the duplicated version.
        key: Vec<u8>,
        /// The duplicated TID.
        tid: Tid,
    },
    /// A reader committed with a TID not larger than a version it observed,
    /// breaking the §4.2 rule that commit TIDs exceed every observed TID.
    TidOrder {
        /// Table of the offending read.
        table: TableId,
        /// Key of the offending read.
        key: Vec<u8>,
        /// Session of the reader.
        session: usize,
        /// Transaction id of the reader within its session.
        txn_id: u64,
        /// The reader's commit TID.
        reader_tid: Tid,
        /// The observed version's TID.
        observed: Tid,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::Cycle { steps } => {
                writeln!(f, "serialization cycle of length {}:", steps.len())?;
                for step in steps {
                    let who = match step.session {
                        Some(s) => format!("s{}/t{}", s, step.txn_id),
                        None => "external".to_string(),
                    };
                    writeln!(
                        f,
                        "  {} (tid {}) --{}[{}:{}]-->",
                        who,
                        step.tid,
                        step.edge,
                        step.table,
                        String::from_utf8_lossy(&step.key)
                    )?;
                }
                Ok(())
            }
            Violation::DuplicateVersion { table, key, tid } => write!(
                f,
                "two committed writers produced version tid {} for {}:{}",
                tid,
                table,
                String::from_utf8_lossy(key)
            ),
            Violation::TidOrder {
                table,
                key,
                session,
                txn_id,
                reader_tid,
                observed,
            } => write!(
                f,
                "s{session}/t{txn_id} committed with tid {reader_tid} but observed \
                 version tid {observed} of {table}:{} (commit TIDs must exceed \
                 observed TIDs)",
                String::from_utf8_lossy(key)
            ),
        }
    }
}

/// A graph node: a committed transaction or a synthetic external writer.
#[derive(Debug, Clone, Copy)]
struct Node {
    session: Option<usize>,
    txn_id: u64,
    tid: u64,
}

#[derive(Default)]
struct KeyState {
    /// Committed versions as `(raw tid, writer node)`.
    versions: Vec<(u64, u32)>,
    /// Reads as `(raw observed tid, reader node)`.
    reads: Vec<(u64, u32)>,
}

/// Checks a recorded history for serializability.
///
/// Returns graph statistics on success, or a [`Violation`] carrying a minimal
/// counterexample on failure.
pub fn check_serializability(sessions: &[SessionHistory]) -> Result<CheckReport, Violation> {
    let mut report = CheckReport {
        sessions: sessions.len(),
        ..Default::default()
    };
    let mut nodes: Vec<Node> = Vec::new();
    let mut keys: HashMap<(TableId, &[u8]), KeyState> = HashMap::new();

    // Pass 1: nodes for committed transactions; per-key versions and reads.
    for s in sessions {
        for txn in s.txns() {
            report.txns += 1;
            report.reads += txn.reads().count();
            report.writes += txn.writes().count();
            if !txn.committed() {
                report.aborted += 1;
                continue;
            }
            report.committed += 1;
            let node = nodes.len() as u32;
            let tid = txn.tid().expect("committed txn has a tid").raw();
            nodes.push(Node {
                session: Some(s.session()),
                txn_id: txn.txn_id(),
                tid,
            });
            for r in txn.reads() {
                keys.entry((r.table, r.key))
                    .or_default()
                    .reads
                    .push((r.observed, node));
            }
            for w in txn.writes() {
                keys.entry((w.table, w.key))
                    .or_default()
                    .versions
                    .push((tid, node));
            }
        }
    }
    report.keys = keys.len();

    // Pass 2: synthesize external writers for observed-but-unrecorded
    // versions, order each key's versions by TID, and reject duplicates.
    let mut external: HashMap<u64, u32> = HashMap::new();
    for (&(table, key), state) in keys.iter_mut() {
        state.versions.sort_unstable_by_key(|&(tid, _)| tid);
        for &(observed, _) in &state.reads {
            if observed == 0
                || state
                    .versions
                    .binary_search_by_key(&observed, |&(tid, _)| tid)
                    .is_ok()
            {
                continue;
            }
            let node = match external.entry(observed) {
                Entry::Occupied(e) => *e.get(),
                Entry::Vacant(e) => {
                    let node = nodes.len() as u32;
                    nodes.push(Node {
                        session: None,
                        txn_id: 0,
                        tid: observed,
                    });
                    report.external_versions += 1;
                    *e.insert(node)
                }
            };
            let pos = state
                .versions
                .binary_search_by_key(&observed, |&(tid, _)| tid)
                .unwrap_err();
            state.versions.insert(pos, (observed, node));
        }
        if let Some(w) = state.versions.windows(2).find(|w| w[0].0 == w[1].0) {
            return Err(Violation::DuplicateVersion {
                table,
                key: key.to_vec(),
                tid: Tid::from_raw(w[0].0),
            });
        }
    }

    // Pass 3: build the dependency edges, checking the TID-order invariant
    // for the write→read direction as we go.
    let mut adj: Vec<HashMap<u32, (EdgeKind, u32)>> = vec![HashMap::new(); nodes.len()];
    let mut edge_keys: Vec<(TableId, Vec<u8>)> = Vec::new();
    for (&(table, key), state) in keys.iter() {
        let mut key_idx: Option<u32> = None;
        let mut add_edge = |adj: &mut Vec<HashMap<u32, (EdgeKind, u32)>>,
                            edges: &mut usize,
                            from: u32,
                            to: u32,
                            kind: EdgeKind| {
            let idx = *key_idx.get_or_insert_with(|| {
                edge_keys.push((table, key.to_vec()));
                edge_keys.len() as u32 - 1
            });
            if let Entry::Vacant(e) = adj[from as usize].entry(to) {
                e.insert((kind, idx));
                *edges += 1;
            }
        };
        for w in state.versions.windows(2) {
            add_edge(&mut adj, &mut report.edges, w[0].1, w[1].1, EdgeKind::WriteWrite);
        }
        for &(observed, reader) in &state.reads {
            if observed == 0 {
                // Read of the initial version: anti-dependency against the
                // first writer, if any.
                if let Some(&(_, first)) = state.versions.first() {
                    if first != reader {
                        add_edge(&mut adj, &mut report.edges, reader, first, EdgeKind::ReadWrite);
                    }
                }
                continue;
            }
            let idx = state
                .versions
                .binary_search_by_key(&observed, |&(tid, _)| tid)
                .expect("external pass inserted every observed version");
            let (_, writer) = state.versions[idx];
            if writer != reader {
                if nodes[reader as usize].tid <= observed {
                    let r = nodes[reader as usize];
                    return Err(Violation::TidOrder {
                        table,
                        key: key.to_vec(),
                        session: r.session.unwrap_or(usize::MAX),
                        txn_id: r.txn_id,
                        reader_tid: Tid::from_raw(r.tid),
                        observed: Tid::from_raw(observed),
                    });
                }
                add_edge(&mut adj, &mut report.edges, writer, reader, EdgeKind::WriteRead);
            }
            if let Some(&(_, next)) = state.versions.get(idx + 1) {
                if next != reader {
                    add_edge(&mut adj, &mut report.edges, reader, next, EdgeKind::ReadWrite);
                }
            }
        }
    }

    // Pass 4: saturating prefix-closure (Kahn). An empty residue is a proof
    // of serializability; the peel order is a witness serial order.
    let n = nodes.len();
    let mut indegree = vec![0u32; n];
    for out in &adj {
        for &dst in out.keys() {
            indegree[dst as usize] += 1;
        }
    }
    let mut queue: Vec<u32> = (0..n as u32).filter(|&v| indegree[v as usize] == 0).collect();
    let mut removed = vec![false; n];
    while let Some(v) = queue.pop() {
        removed[v as usize] = true;
        for &dst in adj[v as usize].keys() {
            indegree[dst as usize] -= 1;
            if indegree[dst as usize] == 0 {
                queue.push(dst);
            }
        }
    }
    let residue: Vec<u32> = (0..n as u32).filter(|&v| !removed[v as usize]).collect();
    if residue.is_empty() {
        return Ok(report);
    }

    // Pass 5: exhaustive search over the residue for a shortest cycle. Every
    // cycle's nodes survive the closure, so searching from each residue node
    // (stopping early at the minimum possible length) finds one.
    let steps = shortest_cycle(&adj, &removed, &residue)
        .expect("non-empty Kahn residue must contain a cycle");
    let steps = steps
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            let next = steps[(i + 1) % steps.len()];
            let (kind, key_idx) = adj[v as usize][&next];
            let (table, ref key) = edge_keys[key_idx as usize];
            let node = nodes[v as usize];
            CycleStep {
                session: node.session,
                txn_id: node.txn_id,
                tid: Tid::from_raw(node.tid),
                edge: kind,
                table,
                key: key.clone(),
            }
        })
        .collect();
    Err(Violation::Cycle { steps })
}

/// Finds a shortest cycle within the residue via breadth-first search from
/// each residue node.
fn shortest_cycle(
    adj: &[HashMap<u32, (EdgeKind, u32)>],
    removed: &[bool],
    residue: &[u32],
) -> Option<Vec<u32>> {
    let n = adj.len();
    let mut best: Option<Vec<u32>> = None;
    let mut parent = vec![u32::MAX; n];
    let mut visited = vec![false; n];
    for &start in residue {
        if best.as_ref().is_some_and(|b| b.len() == 2) {
            break;
        }
        for v in residue {
            parent[*v as usize] = u32::MAX;
            visited[*v as usize] = false;
        }
        visited[start as usize] = true;
        let mut frontier = vec![start];
        let mut found = None;
        'bfs: while !frontier.is_empty() && found.is_none() {
            let mut next_frontier = Vec::new();
            for &v in &frontier {
                for &dst in adj[v as usize].keys() {
                    if removed[dst as usize] {
                        continue;
                    }
                    if dst == start {
                        found = Some(v);
                        break 'bfs;
                    }
                    if !visited[dst as usize] {
                        visited[dst as usize] = true;
                        parent[dst as usize] = v;
                        next_frontier.push(dst);
                    }
                }
            }
            frontier = next_frontier;
        }
        if let Some(last) = found {
            let mut cycle = vec![last];
            let mut v = last;
            while v != start {
                v = parent[v as usize];
                cycle.push(v);
            }
            cycle.reverse();
            if best.as_ref().map_or(true, |b| cycle.len() < b.len()) {
                best = Some(cycle);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::SessionHistory;

    fn tid(epoch: u64, seq: u64) -> Tid {
        Tid::new(epoch, seq)
    }

    /// A serial read/write history over two keys is accepted.
    #[test]
    fn serial_history_is_serializable() {
        let mut s = SessionHistory::new(0);
        s.push_txn(Some(tid(1, 0)), &[], &[(0, b"x", false), (0, b"y", false)]);
        s.push_txn(
            Some(tid(1, 1)),
            &[(0, b"x", tid(1, 0).raw()), (0, b"y", tid(1, 0).raw())],
            &[(0, b"x", false)],
        );
        s.push_txn(
            Some(tid(2, 0)),
            &[(0, b"x", tid(1, 1).raw())],
            &[(0, b"x", true)],
        );
        let report = check_serializability(&[s]).expect("serial history");
        assert_eq!(report.committed, 3);
        assert_eq!(report.keys, 2);
        assert_eq!(report.external_versions, 0);
    }

    /// Reads of versions written before recording started resolve to an
    /// external writer instead of failing.
    #[test]
    fn external_versions_are_synthesized() {
        let pre = tid(1, 5);
        let mut a = SessionHistory::new(0);
        a.push_txn(Some(tid(2, 0)), &[(0, b"x", pre.raw())], &[(0, b"x", false)]);
        let mut b = SessionHistory::new(1);
        b.push_txn(Some(tid(3, 0)), &[(0, b"x", tid(2, 0).raw())], &[]);
        let report = check_serializability(&[a, b]).expect("linear history");
        assert_eq!(report.external_versions, 1);
    }

    /// Aborted transactions contribute nothing to the graph.
    #[test]
    fn aborted_transactions_are_ignored() {
        let mut s = SessionHistory::new(0);
        s.push_txn(Some(tid(1, 0)), &[], &[(0, b"x", false)]);
        // An aborted transaction whose edges would form a cycle if counted.
        s.push_txn(None, &[(0, b"x", 0)], &[(0, b"x", false)]);
        let report = check_serializability(&[s]).expect("aborts are invisible");
        assert_eq!(report.aborted, 1);
        assert_eq!(report.committed, 1);
    }

    /// Canned anomaly: **lost update**. Both transactions read the initial
    /// version of `x` and both write it — one update is lost. The cycle is
    /// T1 --ww--> T2 --rw--> T1.
    #[test]
    fn lost_update_is_rejected() {
        let setup = tid(1, 0);
        let mut a = SessionHistory::new(0);
        a.push_txn(Some(setup), &[], &[(0, b"x", false)]);
        a.push_txn(Some(tid(2, 0)), &[(0, b"x", setup.raw())], &[(0, b"x", false)]);
        let mut b = SessionHistory::new(1);
        b.push_txn(Some(tid(2, 1)), &[(0, b"x", setup.raw())], &[(0, b"x", false)]);
        let violation = check_serializability(&[a, b]).expect_err("lost update");
        let Violation::Cycle { steps } = violation else {
            panic!("expected a cycle, got {violation}");
        };
        assert_eq!(steps.len(), 2, "minimal lost-update cycle has two nodes");
        assert!(steps.iter().any(|s| s.edge == EdgeKind::ReadWrite));
    }

    /// Canned anomaly: **write skew**. T1 reads x and y, writes y; T2 reads
    /// x and y, writes x. Neither sees the other's write: both must be first.
    #[test]
    fn write_skew_is_rejected() {
        let setup = tid(1, 0);
        let mut init = SessionHistory::new(0);
        init.push_txn(Some(setup), &[], &[(0, b"x", false), (0, b"y", false)]);
        let mut a = SessionHistory::new(1);
        a.push_txn(
            Some(tid(2, 0)),
            &[(0, b"x", setup.raw()), (0, b"y", setup.raw())],
            &[(0, b"y", false)],
        );
        let mut b = SessionHistory::new(2);
        b.push_txn(
            Some(tid(2, 1)),
            &[(0, b"x", setup.raw()), (0, b"y", setup.raw())],
            &[(0, b"x", false)],
        );
        let violation = check_serializability(&[init, a, b]).expect_err("write skew");
        let Violation::Cycle { steps } = violation else {
            panic!("expected a cycle, got {violation}");
        };
        assert_eq!(steps.len(), 2);
        assert!(steps.iter().all(|s| s.edge == EdgeKind::ReadWrite));
    }

    /// Canned anomaly: **long fork** (the read-only anomaly). Two writers on
    /// disjoint keys; one reader sees only the first write, another sees only
    /// the second. No serial order satisfies both readers.
    #[test]
    fn long_fork_is_rejected() {
        let t1 = tid(2, 0);
        let t2 = tid(2, 1);
        let mut w1 = SessionHistory::new(0);
        w1.push_txn(Some(t1), &[], &[(0, b"x", false)]);
        let mut w2 = SessionHistory::new(1);
        w2.push_txn(Some(t2), &[], &[(0, b"y", false)]);
        let mut r1 = SessionHistory::new(2);
        r1.push_txn(Some(tid(3, 0)), &[(0, b"x", t1.raw()), (0, b"y", 0)], &[]);
        let mut r2 = SessionHistory::new(3);
        r2.push_txn(Some(tid(3, 1)), &[(0, b"x", 0), (0, b"y", t2.raw())], &[]);
        let violation = check_serializability(&[w1, w2, r1, r2]).expect_err("long fork");
        let Violation::Cycle { steps } = violation else {
            panic!("expected a cycle, got {violation}");
        };
        assert_eq!(steps.len(), 4, "the long-fork cycle spans all four txns");
    }

    /// Two committed writers with the same version TID on one key are
    /// reported as a duplicate version, not silently ordered.
    #[test]
    fn duplicate_versions_are_rejected() {
        let t = tid(2, 0);
        let mut a = SessionHistory::new(0);
        a.push_txn(Some(t), &[], &[(0, b"x", false)]);
        let mut b = SessionHistory::new(1);
        b.push_txn(Some(t), &[], &[(0, b"x", false)]);
        assert!(matches!(
            check_serializability(&[a, b]),
            Err(Violation::DuplicateVersion { .. })
        ));
    }

    /// A reader whose commit TID does not exceed an observed version TID
    /// breaks the §4.2 invariant and is reported directly.
    #[test]
    fn tid_order_violations_are_rejected() {
        let w = tid(3, 0);
        let mut a = SessionHistory::new(0);
        a.push_txn(Some(w), &[], &[(0, b"x", false)]);
        let mut b = SessionHistory::new(1);
        b.push_txn(Some(tid(2, 0)), &[(0, b"x", w.raw())], &[]);
        assert!(matches!(
            check_serializability(&[a, b]),
            Err(Violation::TidOrder { .. })
        ));
    }

    /// Read-modify-write chains do not conflict with themselves.
    #[test]
    fn rmw_chain_is_serializable() {
        let mut s = SessionHistory::new(0);
        let mut prev = 0u64;
        for i in 0..10u64 {
            let t = tid(i + 1, 0);
            s.push_txn(Some(t), &[(0, b"ctr", prev)], &[(0, b"ctr", false)]);
            prev = t.raw();
        }
        let report = check_serializability(&[s]).expect("rmw chain");
        assert_eq!(report.committed, 10);
    }

    /// The empty history is trivially serializable.
    #[test]
    fn empty_history_is_serializable() {
        let report = check_serializability(&[]).expect("empty");
        assert_eq!(report.txns, 0);
    }
}
