//! The **Partitioned-Store** baseline (paper §5.4), modeled on
//! H-Store/VoltDB: the database is physically partitioned by warehouse, each
//! partition is a set of single-threaded trees with **no record-level
//! concurrency control**, and every transaction first acquires the partition
//! locks it needs (in sorted order). Single-partition transactions therefore
//! run without any fine-grained synchronization; cross-partition transactions
//! serialize on whole-partition locks.
//!
//! Only the new-order transaction is implemented — Figures 8 and 9 run a
//! 100% new-order mix — plus the loader, mirroring the paper's setup.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::Rng;

use crate::tpcc::schema::*;
use crate::tpcc::{nurand, TpccConfig, NURAND_C_C_ID, NURAND_C_OL_I_ID};

/// One warehouse partition: every TPC-C table restricted to that warehouse,
/// stored in plain ordered maps with no concurrency control (the partition
/// lock provides all the isolation, as in H-Store).
#[derive(Debug, Default)]
pub struct Partition {
    tables: Vec<BTreeMap<Vec<u8>, Vec<u8>>>,
}

impl Partition {
    fn new() -> Self {
        Partition {
            tables: (0..ALL_TABLES.len()).map(|_| BTreeMap::new()).collect(),
        }
    }

    /// Read a key from one of the partition's tables.
    pub fn get(&self, table: TpccTable, key: &[u8]) -> Option<&Vec<u8>> {
        self.tables[table.index()].get(key)
    }

    /// Insert or overwrite a key.
    pub fn put(&mut self, table: TpccTable, key: Vec<u8>, value: Vec<u8>) {
        self.tables[table.index()].insert(key, value);
    }

    /// Number of keys in one of the partition's tables.
    pub fn len(&self, table: TpccTable) -> usize {
        self.tables[table.index()].len()
    }
}

/// The partitioned store: one lock-protected [`Partition`] per warehouse.
pub struct PartitionedStore {
    config: TpccConfig,
    partitions: Vec<Mutex<Partition>>,
}

/// Statistics from a partitioned-store run.
#[derive(Debug, Default, Clone)]
pub struct PartitionedStats {
    /// Committed new-order transactions.
    pub committed: u64,
    /// Intentional rollbacks (1% invalid item).
    pub rolled_back: u64,
    /// Transactions that touched more than one partition.
    pub cross_partition: u64,
}

impl PartitionedStore {
    /// Creates and loads a partitioned store for the given configuration.
    pub fn load(config: &TpccConfig) -> Arc<Self> {
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(0x9A127);
        let store = PartitionedStore {
            config: config.clone(),
            partitions: (0..config.warehouses)
                .map(|_| Mutex::new(Partition::new()))
                .collect(),
        };
        for w in 1..=config.warehouses {
            let mut p = store.partitions[w as usize - 1].lock();
            // Items are replicated into every partition (they are read-only).
            for i in 1..=config.items {
                let item = ItemRow {
                    name: format!("item-{i}"),
                    price_cents: rng.gen_range(100..=10_000),
                    data: "partitioned".into(),
                };
                p.put(TpccTable::Item, item_key(i), item.encode());
                let stock = StockRow {
                    quantity: rng.gen_range(10..=100),
                    ytd: 0,
                    order_cnt: 0,
                    remote_cnt: 0,
                    dist_info: [b's'; 24],
                    data: "stock".into(),
                };
                p.put(TpccTable::Stock, stock_key(w, i), stock.encode());
            }
            let warehouse = WarehouseRow {
                name: format!("wh-{w}"),
                tax_bp: 1000,
                ytd_cents: 0,
            };
            p.put(TpccTable::Warehouse, warehouse_key(w), warehouse.encode());
            for d in 1..=config.districts_per_warehouse {
                let district = DistrictRow {
                    name: format!("d-{d}"),
                    tax_bp: 1000,
                    ytd_cents: 0,
                    next_o_id: 1,
                };
                p.put(TpccTable::District, district_key(w, d), district.encode());
                for c in 1..=config.customers_per_district {
                    let customer = CustomerRow {
                        first: "FIRST".into(),
                        last: super::tpcc::last_name(c % 1000),
                        balance_cents: 0,
                        ytd_payment_cents: 0,
                        payment_cnt: 0,
                        delivery_cnt: 0,
                        discount_bp: 500,
                        credit: *b"GC",
                        data: String::new(),
                    };
                    p.put(
                        TpccTable::Customer,
                        customer_key(w, d, c),
                        customer.encode(),
                    );
                }
            }
        }
        Arc::new(store)
    }

    /// The configuration used to build the store.
    pub fn config(&self) -> &TpccConfig {
        &self.config
    }

    /// Total number of orders across all partitions (diagnostics).
    pub fn total_orders(&self) -> usize {
        self.partitions
            .iter()
            .map(|p| p.lock().len(TpccTable::Order))
            .sum()
    }

    /// Runs one new-order transaction from home warehouse `w_id`.
    ///
    /// Acquires all required partition locks in sorted order, then executes
    /// without any further synchronization or validation — the H-Store
    /// execution model.
    pub fn new_order(&self, rng: &mut SmallRng, w_id: u32, stats: &mut PartitionedStats) -> bool {
        let config = &self.config;
        let d_id = rng.gen_range(1..=config.districts_per_warehouse);
        let c_id = nurand(rng, 1023, NURAND_C_C_ID, 1, config.customers_per_district);
        let ol_cnt = rng.gen_range(5..=15u32);
        let rollback = rng.gen_range(1..=100u32) == 1;

        let mut lines = Vec::with_capacity(ol_cnt as usize);
        for _ in 0..ol_cnt {
            let i_id = nurand(rng, 8191, NURAND_C_OL_I_ID, 1, config.items);
            let remote = config.warehouses > 1 && rng.gen_bool(config.remote_item_probability);
            let supply_w = if remote {
                let mut other = rng.gen_range(1..=config.warehouses);
                while other == w_id {
                    other = rng.gen_range(1..=config.warehouses);
                }
                other
            } else {
                w_id
            };
            lines.push((i_id, supply_w, rng.gen_range(1..=10u32)));
        }

        // Partition lock set, in sorted order (deadlock freedom).
        let mut needed: Vec<u32> = lines.iter().map(|(_, w, _)| *w).chain([w_id]).collect();
        needed.sort_unstable();
        needed.dedup();
        if needed.len() > 1 {
            stats.cross_partition += 1;
        }
        let mut guards: Vec<(u32, parking_lot::MutexGuard<'_, Partition>)> = needed
            .iter()
            .map(|w| (*w, self.partitions[*w as usize - 1].lock()))
            .collect();

        // Everything below runs as in a single-threaded store.
        let home_index = guards
            .iter()
            .position(|(w, _)| *w == w_id)
            .expect("home locked");

        if rollback {
            stats.rolled_back += 1;
            return false;
        }

        let (o_id, customer_discount, warehouse_tax, district_tax) = {
            let home = &mut guards[home_index].1;
            let warehouse = WarehouseRow::decode(
                home.get(TpccTable::Warehouse, &warehouse_key(w_id))
                    .expect("warehouse"),
            );
            let customer = CustomerRow::decode(
                home.get(TpccTable::Customer, &customer_key(w_id, d_id, c_id))
                    .expect("customer"),
            );
            let dk = district_key(w_id, d_id);
            let mut district =
                DistrictRow::decode(home.get(TpccTable::District, &dk).expect("district"));
            let o_id = district.next_o_id;
            district.next_o_id += 1;
            home.put(TpccTable::District, dk, district.encode());
            let order = OrderRow {
                c_id,
                entry_d: o_id as u64,
                carrier_id: 0,
                ol_cnt,
                all_local: lines.iter().all(|(_, w, _)| *w == w_id),
            };
            home.put(
                TpccTable::Order,
                order_key(w_id, d_id, o_id),
                order.encode(),
            );
            home.put(
                TpccTable::NewOrder,
                new_order_key(w_id, d_id, o_id),
                Vec::new(),
            );
            home.put(
                TpccTable::OrderCustomerIndex,
                order_customer_key(w_id, d_id, c_id, o_id),
                o_id.to_le_bytes().to_vec(),
            );
            (
                o_id,
                customer.discount_bp,
                warehouse.tax_bp,
                district.tax_bp,
            )
        };

        let mut total_cents = 0u64;
        for (ol_number, (i_id, supply_w, quantity)) in lines.iter().enumerate() {
            let supply_index = guards
                .iter()
                .position(|(w, _)| w == supply_w)
                .expect("supply locked");
            let price_cents = {
                let part = &guards[supply_index].1;
                ItemRow::decode(part.get(TpccTable::Item, &item_key(*i_id)).expect("item"))
                    .price_cents
            };
            {
                let part = &mut guards[supply_index].1;
                let sk = stock_key(*supply_w, *i_id);
                let mut stock = StockRow::decode(part.get(TpccTable::Stock, &sk).expect("stock"));
                stock.quantity = if stock.quantity >= *quantity as i32 + 10 {
                    stock.quantity - *quantity as i32
                } else {
                    stock.quantity - *quantity as i32 + 91
                };
                stock.ytd += *quantity as u64;
                stock.order_cnt += 1;
                if supply_w != &w_id {
                    stock.remote_cnt += 1;
                }
                part.put(TpccTable::Stock, sk, stock.encode());
            }
            let amount_cents = *quantity as u64 * price_cents;
            total_cents += amount_cents;
            let line = OrderLineRow {
                i_id: *i_id,
                supply_w_id: *supply_w,
                delivery_d: 0,
                quantity: *quantity,
                amount_cents,
                dist_info: [b'd'; 24],
            };
            let home = &mut guards[home_index].1;
            home.put(
                TpccTable::OrderLine,
                order_line_key(w_id, d_id, o_id, ol_number as u32 + 1),
                line.encode(),
            );
        }
        let _total = total_cents as f64
            * (1.0 + (warehouse_tax + district_tax) as f64 / 10_000.0)
            * (1.0 - customer_discount as f64 / 10_000.0);
        stats.committed += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn tiny() -> TpccConfig {
        TpccConfig {
            warehouses: 2,
            districts_per_warehouse: 2,
            customers_per_district: 20,
            items: 50,
            remote_item_probability: 0.5,
            ..TpccConfig::tiny()
        }
    }

    #[test]
    fn load_populates_partitions() {
        let store = PartitionedStore::load(&tiny());
        let p = store.partitions[0].lock();
        assert_eq!(p.len(TpccTable::Item), 50);
        assert_eq!(p.len(TpccTable::Stock), 50);
        assert_eq!(p.len(TpccTable::Customer), 40);
        assert_eq!(p.len(TpccTable::District), 2);
    }

    #[test]
    fn new_order_commits_and_tracks_cross_partition() {
        let store = PartitionedStore::load(&tiny());
        let mut rng = SmallRng::seed_from_u64(7);
        let mut stats = PartitionedStats::default();
        for _ in 0..100 {
            store.new_order(&mut rng, 1, &mut stats);
        }
        assert!(stats.committed > 50);
        assert!(
            stats.cross_partition > 0,
            "50% remote probability must cross partitions"
        );
        assert_eq!(store.total_orders() as u64, stats.committed);
    }

    #[test]
    fn concurrent_single_partition_new_orders_do_not_interfere() {
        let mut cfg = tiny();
        cfg.remote_item_probability = 0.0;
        let store = PartitionedStore::load(&cfg);
        let mut handles = Vec::new();
        for t in 0..2u32 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(t as u64);
                let mut stats = PartitionedStats::default();
                for _ in 0..200 {
                    store.new_order(&mut rng, t + 1, &mut stats);
                }
                stats.committed
            }));
        }
        let committed: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(store.total_orders() as u64, committed);
    }
}
