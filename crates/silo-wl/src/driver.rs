//! The multi-threaded benchmark driver (paper §5.1).
//!
//! "Each thread combines a database worker with a workload generator. These
//! threads run within the same process, and share Silo trees in the same
//! address space. We run each experiment for 60 seconds."
//!
//! The driver spawns one thread per requested worker, each of which registers
//! a [`Worker`] with the database, repeatedly asks the [`Workload`] for one
//! transaction, and counts commits and aborts. When a [`SiloLogger`] is
//! supplied, a sample of transactions additionally measures *durable latency*
//! — the time from the start of the transaction until its epoch becomes
//! durable — which is what Figure 7 plots.
//!
//! Latency sampling is asynchronous: workers hand each sampled transaction's
//! start time and commit epoch to a dedicated sampler thread, which parks in
//! [`SiloLogger::wait_for_durable`] on their behalf. Group-commit latency is
//! epochs long (tens of milliseconds), so a worker that waited inline would
//! spend almost all of its time parked and the "persistent" series would
//! measure the sampling policy rather than the logging subsystem.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::SeedableRng;
use silo_core::{Database, Worker, WorkerStats};
use silo_log::{CheckpointStats, Checkpointer, LoggerStats, SiloLogger};

/// A workload: produces one transaction per call against the given worker.
///
/// Implementations decide the transaction type (e.g. the TPC-C mix) using the
/// supplied RNG and report whether the transaction committed.
pub trait Workload: Send + Sync {
    /// Runs exactly one transaction attempt. Returns `true` on commit,
    /// `false` on abort.
    fn run_one(&self, worker: &mut Worker, rng: &mut SmallRng, thread_index: usize) -> bool;

    /// Called once per thread before the measurement loop starts.
    fn setup_thread(&self, _worker: &mut Worker, _thread_index: usize) {}
}

/// Options for one driver run: thread count, duration, seeding, latency
/// sampling, and the durability attachments (logger, checkpointer) that the
/// run should sample and report on.
///
/// This is the single entry point for both MemSilo-style and persistent
/// runs — what used to be the `run_workload`/`run_workload_durable` pair is
/// now one builder:
///
/// ```no_run
/// use std::time::Duration;
/// use silo_wl::driver::RunOptions;
/// # let db = silo_core::Database::open(silo_core::SiloConfig::for_testing());
/// # struct W; impl silo_wl::driver::Workload for W {
/// #   fn run_one(&self, _: &mut silo_core::Worker, _: &mut rand::rngs::SmallRng, _: usize) -> bool { true }
/// # }
/// let result = RunOptions::default()
///     .with_threads(4)
///     .with_duration(Duration::from_secs(10))
///     .run(&db, std::sync::Arc::new(W));
/// println!("{:.0} txn/s", result.throughput());
/// ```
///
/// The struct is `#[non_exhaustive]`: construct it with [`Default`] and
/// refine with the `with_*` methods, so new knobs (as the server and future
/// subsystems grow) are never a breaking change.
#[derive(Clone)]
#[non_exhaustive]
pub struct RunOptions {
    /// Number of worker threads.
    pub threads: usize,
    /// Measured run duration.
    pub duration: Duration,
    /// Random seed base (thread `i` uses `seed + i`).
    pub seed: u64,
    /// Sample 1-in-N committed transactions for durable-latency measurement
    /// (0 disables sampling even when a logger is present).
    pub latency_sample_every: u64,
    /// Durability subsystem to sample durable latency against and whose
    /// counters the result should include (`None` = MemSilo-style run).
    pub logger: Option<Arc<SiloLogger>>,
    /// Periodic checkpointer (spawned by the caller against the same
    /// database and logger) whose counters the result should include. The
    /// checkpointer keeps running when the run returns — shutting it down
    /// (and deciding whether a final checkpoint is taken) stays with the
    /// caller, mirroring how the logger is handled.
    pub checkpointer: Option<Arc<Checkpointer>>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            threads: 1,
            duration: Duration::from_secs(1),
            seed: 0xC0FFEE,
            latency_sample_every: 64,
            logger: None,
            checkpointer: None,
        }
    }
}

impl std::fmt::Debug for RunOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunOptions")
            .field("threads", &self.threads)
            .field("duration", &self.duration)
            .field("seed", &self.seed)
            .field("latency_sample_every", &self.latency_sample_every)
            .field("logger", &self.logger.is_some())
            .field("checkpointer", &self.checkpointer.is_some())
            .finish()
    }
}

impl RunOptions {
    /// Sets the number of worker threads.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the measured run duration.
    pub fn with_duration(mut self, duration: Duration) -> Self {
        self.duration = duration;
        self
    }

    /// Sets the random seed base.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the 1-in-N durable-latency sampling rate (0 disables).
    pub fn with_latency_sample_every(mut self, every: u64) -> Self {
        self.latency_sample_every = every;
        self
    }

    /// Attaches the durability subsystem (enables durable-latency sampling).
    pub fn with_logger(mut self, logger: Arc<SiloLogger>) -> Self {
        self.logger = Some(logger);
        self
    }

    /// Attaches a running checkpointer whose counters the result includes.
    pub fn with_checkpointer(mut self, checkpointer: Arc<Checkpointer>) -> Self {
        self.checkpointer = Some(checkpointer);
        self
    }

    /// Runs `workload` against `db` with these options
    /// (method form of [`run_workload`]).
    pub fn run(self, db: &Arc<Database>, workload: Arc<dyn Workload>) -> RunResult {
        run_workload(db, workload, self)
    }
}

/// Latency statistics over the sampled transactions, in microseconds.
#[derive(Debug, Clone, Default)]
pub struct LatencySummary {
    /// Number of samples.
    pub samples: u64,
    /// Mean latency (µs).
    pub mean_us: f64,
    /// Median latency (µs).
    pub p50_us: u64,
    /// 99th-percentile latency (µs).
    pub p99_us: u64,
    /// Maximum observed latency (µs).
    pub max_us: u64,
}

impl LatencySummary {
    fn from_samples(mut samples: Vec<u64>) -> Self {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        samples.sort_unstable();
        let n = samples.len();
        let sum: u64 = samples.iter().sum();
        LatencySummary {
            samples: n as u64,
            mean_us: sum as f64 / n as f64,
            p50_us: samples[n / 2],
            p99_us: samples[((n * 99) / 100).min(n - 1)],
            max_us: samples[n - 1],
        }
    }
}

/// Result of a driver run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Committed transactions across all threads.
    pub committed: u64,
    /// Aborted transaction attempts across all threads.
    pub aborted: u64,
    /// Wall-clock duration of the measured run.
    pub duration: Duration,
    /// Aggregated engine statistics.
    pub stats: WorkerStats,
    /// Durable-latency summary (empty when no logger / sampling disabled).
    pub latency: LatencySummary,
    /// Number of worker threads used.
    pub threads: usize,
    /// Logging-subsystem counters at the end of the run (`None` when the run
    /// had no logger).
    pub logger_stats: Option<LoggerStats>,
    /// Checkpointer counters at the end of the run (`None` when the run had
    /// no checkpointer).
    pub checkpoint_stats: Option<CheckpointStats>,
    /// Index statistics (node counts, trie layers, splits, reader retries),
    /// filled in by the benchmark binaries after the run from
    /// `Database::index_stats()` (or the Key-Value store's tree).
    pub index_stats: Option<silo_core::IndexStats>,
}

impl RunResult {
    /// Committed transactions per second.
    pub fn throughput(&self) -> f64 {
        self.committed as f64 / self.duration.as_secs_f64()
    }

    /// Committed transactions per second per worker thread.
    pub fn per_core_throughput(&self) -> f64 {
        self.throughput() / self.threads.max(1) as f64
    }

    /// Aborts per second.
    pub fn abort_rate(&self) -> f64 {
        self.aborted as f64 / self.duration.as_secs_f64()
    }
}

/// Runs `workload` against `db` with the given options (see [`RunOptions`];
/// [`RunOptions::run`] is the method form).
pub fn run_workload(
    db: &Arc<Database>,
    workload: Arc<dyn Workload>,
    options: RunOptions,
) -> RunResult {
    let RunOptions { logger, checkpointer, .. } = options.clone();
    let config = options;
    let stop = Arc::new(AtomicBool::new(false));
    let start_barrier = Arc::new(std::sync::Barrier::new(config.threads + 1));
    let mut handles = Vec::new();

    // Asynchronous durable-latency sampling: sampled commits send their
    // (start time, post-commit epoch) to this thread, which parks in
    // `wait_for_durable` so the workers never stall on group commit.
    let (sample_tx, sampler) = match (&logger, config.latency_sample_every) {
        (Some(logger), n) if n > 0 => {
            let logger = Arc::clone(logger);
            let (tx, rx) = std::sync::mpsc::channel::<(Instant, u64)>();
            let handle = std::thread::Builder::new()
                .name("silo-latency-sampler".to_string())
                .spawn(move || {
                    let mut latencies = Vec::new();
                    // Batch group-commit waits: `wait_for_durable_epoch`
                    // parks only for the *first* sample of each epoch group —
                    // samples arrive in roughly epoch order and the durable
                    // epoch is monotone, so every queued sample the advance
                    // covered passes the fast path (one atomic load, no
                    // condvar) instead of taking the durable mutex per
                    // transaction.
                    let mut failed = false;
                    while let Ok((begin, epoch)) = rx.recv() {
                        if failed {
                            // A failed logger never becomes durable again;
                            // drain the queue without recording.
                            continue;
                        }
                        match logger.wait_for_durable_epoch(epoch) {
                            silo_log::DurableWait::Durable => {
                                latencies.push(begin.elapsed().as_micros() as u64);
                            }
                            _ => failed = true,
                        }
                    }
                    latencies
                })
                .expect("spawn latency sampler");
            (Some(tx), Some(handle))
        }
        _ => (None, None),
    };

    for thread_index in 0..config.threads {
        let db = Arc::clone(db);
        let workload = Arc::clone(&workload);
        let stop = Arc::clone(&stop);
        let barrier = Arc::clone(&start_barrier);
        let sample_tx = sample_tx.clone();
        let sample_every = config.latency_sample_every.max(1);
        let seed = config.seed + thread_index as u64;
        handles.push(std::thread::spawn(move || {
            let mut worker = db.register_worker();
            let mut rng = SmallRng::seed_from_u64(seed);
            workload.setup_thread(&mut worker, thread_index);
            barrier.wait();
            let mut committed = 0u64;
            let mut aborted = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let sample = sample_tx.is_some() && (committed + aborted) % sample_every == 0;
                let begin = if sample { Some(Instant::now()) } else { None };
                let ok = workload.run_one(&mut worker, &mut rng, thread_index);
                if ok {
                    committed += 1;
                    if let (Some(begin), Some(tx)) = (begin, sample_tx.as_ref()) {
                        // The commit epoch is at most the global epoch read
                        // right after commit, so waiting for that epoch is a
                        // conservative durable-latency measurement. The wait
                        // itself happens on the sampler thread.
                        let _ = tx.send((begin, db.epochs().global_epoch()));
                    }
                } else {
                    aborted += 1;
                }
            }
            worker.quiesce();
            let stats = worker.stats().clone();
            drop(worker);
            (committed, aborted, stats)
        }));
    }

    start_barrier.wait();
    let started = Instant::now();
    std::thread::sleep(config.duration);
    stop.store(true, Ordering::Relaxed);

    let mut committed = 0;
    let mut aborted = 0;
    let mut stats = WorkerStats::default();
    for handle in handles {
        let (c, a, s) = handle.join().expect("worker thread panicked");
        committed += c;
        aborted += a;
        stats.merge(&s);
    }
    let duration = started.elapsed();

    // All worker threads (and their sender clones) are gone; dropping the
    // last sender lets the sampler drain its queue and exit. Joining it
    // *after* the workers is what lets in-flight samples complete: with the
    // workers quiesced, the epoch — and with it the durable epoch — keeps
    // advancing.
    drop(sample_tx);
    let all_latencies = sampler
        .map(|h| h.join().expect("latency sampler panicked"))
        .unwrap_or_default();

    RunResult {
        committed,
        aborted,
        duration,
        stats,
        latency: LatencySummary::from_samples(all_latencies),
        threads: config.threads,
        logger_stats: logger.map(|l| l.stats()),
        checkpoint_stats: checkpointer.map(|c| c.stats()),
        index_stats: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silo_core::SiloConfig;

    struct TrivialWorkload {
        table: silo_core::TableId,
    }

    impl Workload for TrivialWorkload {
        fn run_one(&self, worker: &mut Worker, rng: &mut SmallRng, thread: usize) -> bool {
            use rand::Rng;
            let key = format!("t{}k{}", thread, rng.gen_range(0..100u32));
            let mut txn = worker.begin();
            if txn.write(self.table, key.as_bytes(), b"value").is_err() {
                txn.abort();
                return false;
            }
            txn.commit().is_ok()
        }
    }

    #[test]
    fn driver_runs_and_counts_commits() {
        let db = Database::open(SiloConfig::for_testing().with_spawn_epoch_advancer(true));
        let table = db.create_table("t").unwrap();
        let result = RunOptions::default()
            .with_threads(2)
            .with_duration(Duration::from_millis(100))
            .run(&db, Arc::new(TrivialWorkload { table }));
        assert!(result.committed > 0);
        assert!(result.throughput() > 0.0);
        assert!(result.per_core_throughput() <= result.throughput());
        db.stop_epoch_advancer();
    }

    #[test]
    fn latency_summary_percentiles() {
        let s = LatencySummary::from_samples(vec![10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
        assert_eq!(s.samples, 10);
        assert_eq!(s.p50_us, 60);
        assert_eq!(s.max_us, 100);
        assert!(s.mean_us > 10.0 && s.mean_us < 100.0);
        let empty = LatencySummary::from_samples(vec![]);
        assert_eq!(empty.samples, 0);
    }
}
