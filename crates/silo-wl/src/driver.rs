//! The multi-threaded benchmark driver (paper §5.1).
//!
//! "Each thread combines a database worker with a workload generator. These
//! threads run within the same process, and share Silo trees in the same
//! address space. We run each experiment for 60 seconds."
//!
//! The driver spawns one thread per requested worker, each of which registers
//! a [`Worker`] with the database, repeatedly asks the [`Workload`] for one
//! transaction, and counts commits and aborts. When a [`SiloLogger`] is
//! supplied, a sample of transactions additionally measures *durable latency*
//! — the time from the start of the transaction until its epoch becomes
//! durable — which is what Figure 7 plots.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::SeedableRng;
use silo_core::{Database, Worker, WorkerStats};
use silo_log::SiloLogger;

/// A workload: produces one transaction per call against the given worker.
///
/// Implementations decide the transaction type (e.g. the TPC-C mix) using the
/// supplied RNG and report whether the transaction committed.
pub trait Workload: Send + Sync {
    /// Runs exactly one transaction attempt. Returns `true` on commit,
    /// `false` on abort.
    fn run_one(&self, worker: &mut Worker, rng: &mut SmallRng, thread_index: usize) -> bool;

    /// Called once per thread before the measurement loop starts.
    fn setup_thread(&self, _worker: &mut Worker, _thread_index: usize) {}
}

/// Driver configuration.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Number of worker threads.
    pub threads: usize,
    /// Measured run duration.
    pub duration: Duration,
    /// Random seed base (thread `i` uses `seed + i`).
    pub seed: u64,
    /// Sample 1-in-N committed transactions for durable-latency measurement
    /// (0 disables sampling even when a logger is present).
    pub latency_sample_every: u64,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            threads: 1,
            duration: Duration::from_secs(1),
            seed: 0xC0FFEE,
            latency_sample_every: 64,
        }
    }
}

/// Latency statistics over the sampled transactions, in microseconds.
#[derive(Debug, Clone, Default)]
pub struct LatencySummary {
    /// Number of samples.
    pub samples: u64,
    /// Mean latency (µs).
    pub mean_us: f64,
    /// Median latency (µs).
    pub p50_us: u64,
    /// 99th-percentile latency (µs).
    pub p99_us: u64,
    /// Maximum observed latency (µs).
    pub max_us: u64,
}

impl LatencySummary {
    fn from_samples(mut samples: Vec<u64>) -> Self {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        samples.sort_unstable();
        let n = samples.len();
        let sum: u64 = samples.iter().sum();
        LatencySummary {
            samples: n as u64,
            mean_us: sum as f64 / n as f64,
            p50_us: samples[n / 2],
            p99_us: samples[((n * 99) / 100).min(n - 1)],
            max_us: samples[n - 1],
        }
    }
}

/// Result of a driver run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Committed transactions across all threads.
    pub committed: u64,
    /// Aborted transaction attempts across all threads.
    pub aborted: u64,
    /// Wall-clock duration of the measured run.
    pub duration: Duration,
    /// Aggregated engine statistics.
    pub stats: WorkerStats,
    /// Durable-latency summary (empty when no logger / sampling disabled).
    pub latency: LatencySummary,
    /// Number of worker threads used.
    pub threads: usize,
}

impl RunResult {
    /// Committed transactions per second.
    pub fn throughput(&self) -> f64 {
        self.committed as f64 / self.duration.as_secs_f64()
    }

    /// Committed transactions per second per worker thread.
    pub fn per_core_throughput(&self) -> f64 {
        self.throughput() / self.threads.max(1) as f64
    }

    /// Aborts per second.
    pub fn abort_rate(&self) -> f64 {
        self.aborted as f64 / self.duration.as_secs_f64()
    }
}

/// Runs `workload` against `db` with the given configuration.
///
/// `logger` enables durable-latency sampling (Figure 7); pass `None` for
/// MemSilo-style runs.
pub fn run_workload(
    db: &Arc<Database>,
    workload: Arc<dyn Workload>,
    config: DriverConfig,
    logger: Option<Arc<SiloLogger>>,
) -> RunResult {
    let stop = Arc::new(AtomicBool::new(false));
    let start_barrier = Arc::new(std::sync::Barrier::new(config.threads + 1));
    let mut handles = Vec::new();

    for thread_index in 0..config.threads {
        let db = Arc::clone(db);
        let workload = Arc::clone(&workload);
        let stop = Arc::clone(&stop);
        let barrier = Arc::clone(&start_barrier);
        let logger = logger.clone();
        let sample_every = config.latency_sample_every;
        let seed = config.seed + thread_index as u64;
        handles.push(std::thread::spawn(move || {
            let mut worker = db.register_worker();
            let mut rng = SmallRng::seed_from_u64(seed);
            workload.setup_thread(&mut worker, thread_index);
            barrier.wait();
            let mut committed = 0u64;
            let mut aborted = 0u64;
            let mut latencies = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                let sample = logger.is_some()
                    && sample_every > 0
                    && (committed + aborted) % sample_every == 0;
                let begin = if sample { Some(Instant::now()) } else { None };
                let ok = workload.run_one(&mut worker, &mut rng, thread_index);
                if ok {
                    committed += 1;
                    if let (Some(begin), Some(logger)) = (begin, logger.as_ref()) {
                        // Durable (group-commit) latency: wait until the
                        // transaction's epoch is durable. The commit epoch is
                        // at most the current global epoch, so waiting for the
                        // epoch observed right after commit is conservative.
                        //
                        // Quiesce while parked: the worker holds no shared
                        // references between transactions, and keeping its
                        // epoch pin here would stop the global epoch (E −
                        // e_w ≤ 1) — and with it the durable epoch the wait
                        // is watching — from ever advancing.
                        let epoch = db.epochs().global_epoch();
                        worker.quiesce();
                        if logger.wait_for_durable(epoch, Duration::from_secs(10)) {
                            latencies.push(begin.elapsed().as_micros() as u64);
                        }
                    }
                } else {
                    aborted += 1;
                }
            }
            worker.quiesce();
            let stats = worker.stats().clone();
            drop(worker);
            (committed, aborted, stats, latencies)
        }));
    }

    start_barrier.wait();
    let started = Instant::now();
    std::thread::sleep(config.duration);
    stop.store(true, Ordering::Relaxed);

    let mut committed = 0;
    let mut aborted = 0;
    let mut stats = WorkerStats::default();
    let mut all_latencies = Vec::new();
    for handle in handles {
        let (c, a, s, lat) = handle.join().expect("worker thread panicked");
        committed += c;
        aborted += a;
        stats.merge(&s);
        all_latencies.extend(lat);
    }
    let duration = started.elapsed();

    RunResult {
        committed,
        aborted,
        duration,
        stats,
        latency: LatencySummary::from_samples(all_latencies),
        threads: config.threads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silo_core::SiloConfig;

    struct TrivialWorkload {
        table: silo_core::TableId,
    }

    impl Workload for TrivialWorkload {
        fn run_one(&self, worker: &mut Worker, rng: &mut SmallRng, thread: usize) -> bool {
            use rand::Rng;
            let key = format!("t{}k{}", thread, rng.gen_range(0..100u32));
            let mut txn = worker.begin();
            if txn.write(self.table, key.as_bytes(), b"value").is_err() {
                txn.abort();
                return false;
            }
            txn.commit().is_ok()
        }
    }

    #[test]
    fn driver_runs_and_counts_commits() {
        let db = Database::open(SiloConfig {
            spawn_epoch_advancer: true,
            ..SiloConfig::for_testing()
        });
        let table = db.create_table("t").unwrap();
        let result = run_workload(
            &db,
            Arc::new(TrivialWorkload { table }),
            DriverConfig {
                threads: 2,
                duration: Duration::from_millis(100),
                ..Default::default()
            },
            None,
        );
        assert!(result.committed > 0);
        assert!(result.throughput() > 0.0);
        assert!(result.per_core_throughput() <= result.throughput());
        db.stop_epoch_advancer();
    }

    #[test]
    fn latency_summary_percentiles() {
        let s = LatencySummary::from_samples(vec![10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
        assert_eq!(s.samples, 10);
        assert_eq!(s.p50_us, 60);
        assert_eq!(s.max_us, 100);
        assert!(s.mean_us > 10.0 && s.mean_us < 100.0);
        let empty = LatencySummary::from_samples(vec![]);
        assert_eq!(empty.samples, 0);
    }
}
