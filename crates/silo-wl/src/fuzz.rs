//! The **scenario fuzzer**: a seeded random workload generator that records
//! every transaction through [`silo_check`] and verifies the execution was
//! serializable.
//!
//! Each run spawns `threads` sessions that hammer a small hot key space with
//! randomized multi-key transactions — reads, blind writes, read-modify-
//! writes, inserts and deletes, plus injected user aborts — while a
//! [`HistoryRecorder`] captures what every transaction observed and
//! installed. After the workers finish, [`check_serializability`] rebuilds
//! the serialization graph from the recorded history; any cycle is returned
//! as a [`FuzzFailure`] carrying the seed, the violation and the full
//! history so the run can be replayed and inspected.
//!
//! Determinism: each session derives its operation stream purely from
//! `(seed, thread_index)`, so a failing seed replays the same per-session
//! transaction streams (thread interleaving — and therefore the recorded
//! history — still varies run to run, which is the point: every
//! interleaving must check out).
//!
//! Runs always disable GC: the checker infers per-key version orders from
//! observed TIDs, and GC's index unhooking would make a later read of a
//! collected key look like a read of the initial version (see the
//! `silo_check::checker` docs).

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use silo_check::{check_serializability, dump_sessions, CheckReport, SessionHistory, Violation};
use silo_core::{Database, DurabilityHealth, EpochConfig, HistoryRecorder, SiloConfig, TableId};

/// Knobs for one fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed; every per-session stream derives from it.
    pub seed: u64,
    /// Number of concurrent sessions (threads).
    pub threads: usize,
    /// Transactions each session issues.
    pub txns_per_session: usize,
    /// Size of the key space (keys are 8-byte big-endian integers
    /// `0..keys`; the lower half is prepopulated).
    pub keys: u64,
    /// Size of the hot subset contended accesses concentrate on.
    pub hot_keys: u64,
    /// Probability in `[0, 1]` that an access targets the hot subset (the
    /// skew knob).
    pub hot_bias: f64,
    /// Maximum operations per transaction (actual count is uniform in
    /// `1..=max_txn_ops`).
    pub max_txn_ops: usize,
    /// Probability in `[0, 1]` that a transaction is aborted by the
    /// "application" right before commit (abort injection).
    pub abort_probability: f64,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 1,
            threads: 2,
            txns_per_session: 300,
            keys: 32,
            hot_keys: 4,
            hot_bias: 0.6,
            max_txn_ops: 4,
            abort_probability: 0.05,
        }
    }
}

impl FuzzConfig {
    /// A config for `seed` with everything else at the defaults.
    pub fn for_seed(seed: u64) -> Self {
        FuzzConfig {
            seed,
            ..FuzzConfig::default()
        }
    }
}

/// Statistics from a fuzz run whose history checked out.
#[derive(Debug)]
pub struct FuzzOutcome {
    /// The seed the run used.
    pub seed: u64,
    /// Number of sessions.
    pub threads: usize,
    /// Committed transactions across all sessions (including setup).
    pub committed: u64,
    /// Aborted transactions across all sessions (engine + injected).
    pub aborted: u64,
    /// Whether any session ever observed non-[`Healthy`]
    /// [`DurabilityHealth`] during the run.
    ///
    /// [`Healthy`]: DurabilityHealth::Healthy
    pub degraded_seen: bool,
    /// The checker's statistics for the recorded history.
    pub report: CheckReport,
}

/// A fuzz run whose recorded history failed the serializability check.
#[derive(Debug)]
pub struct FuzzFailure {
    /// The seed that produced the failure — feed it back via
    /// `SILO_FUZZ_SEED` to replay.
    pub seed: u64,
    /// Number of sessions the failing run used.
    pub threads: usize,
    /// What the checker found.
    pub violation: Violation,
    /// The full recorded history, for offline inspection.
    pub sessions: Vec<SessionHistory>,
}

impl FuzzFailure {
    /// Renders the complete recorded history in the recorder's text format.
    pub fn dump(&self) -> String {
        dump_sessions(&self.sessions)
    }

    /// The command line that replays this failure.
    pub fn replay_command(&self) -> String {
        format!(
            "SILO_FUZZ_SEED={} SILO_FUZZ_THREADS={} cargo run --release -p silo-bench --bin history_fuzz",
            self.seed, self.threads
        )
    }
}

impl fmt::Display for FuzzFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "history check FAILED (seed={}, threads={}): {}",
            self.seed, self.threads, self.violation
        )?;
        write!(f, "replay with: {}", self.replay_command())
    }
}

impl std::error::Error for FuzzFailure {}

/// Runs one fuzz scenario on a fresh database and checks the recorded
/// history for serializability.
pub fn run_fuzz(config: &FuzzConfig) -> Result<FuzzOutcome, Box<FuzzFailure>> {
    let db = Database::open(
        SiloConfig::default()
            .with_epoch(EpochConfig {
                epoch_interval: Duration::from_millis(1),
                ..EpochConfig::default()
            })
            .with_spawn_epoch_advancer(true)
            // GC would unhook deleted keys and falsify observed versions; see
            // the module docs.
            .without_gc(),
    );
    let table = db.create_table("fuzz").expect("fresh database");
    let outcome = run_fuzz_on(&db, table, config);
    db.stop_epoch_advancer();
    outcome
}

/// Runs one fuzz scenario against an existing database (which must have GC
/// disabled), installing a [`HistoryRecorder`] if none is present. This
/// variant lets harnesses fuzz a database whose durability layer is being
/// fault-injected at the same time.
pub fn run_fuzz_on(
    db: &Arc<Database>,
    table: TableId,
    config: &FuzzConfig,
) -> Result<FuzzOutcome, Box<FuzzFailure>> {
    assert!(config.threads >= 1, "need at least one session");
    assert!(config.keys >= 2, "need at least two keys");
    assert!(config.max_txn_ops >= 1, "need at least one op per txn");

    let recorder = match db.history_recorder() {
        Some(existing) => Arc::clone(existing),
        None => {
            let fresh = Arc::new(HistoryRecorder::new());
            // A concurrent installer beating us to it is fine — use theirs.
            let _ = db.set_history_recorder(Arc::clone(&fresh));
            Arc::clone(db.history_recorder().expect("just installed"))
        }
    };
    recorder.set_enabled(true);
    // Discard history from any earlier run of this recorder so the check
    // below sees exactly this scenario's transactions.
    drop(recorder.take_sessions());

    // Prepopulate the lower half of the key space. Recorded like any other
    // session so the checker knows the initial versions' TIDs.
    let mut setup_committed = 0u64;
    {
        let mut worker = db.register_worker();
        let mut txn = worker.begin();
        for key in 0..config.keys / 2 {
            txn.write(table, &key.to_be_bytes(), &0u64.to_be_bytes())
                .expect("setup write");
        }
        txn.commit().expect("setup commit");
        setup_committed += 1;
        worker.flush_history();
    }

    let barrier = Arc::new(Barrier::new(config.threads));
    let degraded = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::with_capacity(config.threads);
    for thread_index in 0..config.threads {
        let db = Arc::clone(db);
        let cfg = config.clone();
        let barrier = Arc::clone(&barrier);
        let degraded = Arc::clone(&degraded);
        handles.push(std::thread::spawn(move || {
            let mut worker = db.register_worker();
            let mut rng = FuzzRng::new(cfg.seed, thread_index as u64);
            barrier.wait();
            let mut committed = 0u64;
            let mut aborted = 0u64;
            for txn_index in 0..cfg.txns_per_session {
                let ops = 1 + (rng.next() as usize) % cfg.max_txn_ops;
                let mut txn = worker.begin();
                let mut poisoned = false;
                for _ in 0..ops {
                    let key = pick_key(&mut rng, &cfg).to_be_bytes();
                    let value = rng.next().to_be_bytes();
                    let result = match rng.next() % 100 {
                        // Plain read.
                        0..=34 => txn.read(table, &key).map(|_| ()),
                        // Blind write.
                        35..=59 => txn.write(table, &key, &value),
                        // Read-modify-write: increment the stored counter.
                        60..=79 => txn.read(table, &key).and_then(|prev| {
                            let bumped = decode_counter(prev.as_deref())
                                .wrapping_add(1)
                                .to_be_bytes();
                            txn.write(table, &key, &bumped)
                        }),
                        // Insert (duplicate keys poison the transaction —
                        // that is a legitimate abort path to exercise).
                        80..=89 => txn.insert(table, &key, &value),
                        // Delete.
                        _ => txn.delete(table, &key).map(|_| ()),
                    };
                    if result.is_err() {
                        poisoned = true;
                        break;
                    }
                }
                // Sample durability while the workload runs, so harnesses
                // that inject log faults can assert the degraded window
                // was actually exercised.
                if txn_index % 16 == 0
                    && !matches!(db.durability_health(), DurabilityHealth::Healthy)
                {
                    degraded.store(true, Ordering::Relaxed);
                }
                if poisoned || rng.chance(cfg.abort_probability) {
                    txn.abort();
                    aborted += 1;
                } else {
                    match txn.commit() {
                        Ok(_) => committed += 1,
                        Err(_) => aborted += 1,
                    }
                }
            }
            (committed, aborted)
        }));
    }

    let mut committed = setup_committed;
    let mut aborted = 0u64;
    for handle in handles {
        let (c, a) = handle.join().expect("fuzz session panicked");
        committed += c;
        aborted += a;
    }

    let sessions = recorder.take_sessions();
    match check_serializability(&sessions) {
        Ok(report) => Ok(FuzzOutcome {
            seed: config.seed,
            threads: config.threads,
            committed,
            aborted,
            degraded_seen: degraded.load(Ordering::Relaxed),
            report,
        }),
        Err(violation) => Err(Box::new(FuzzFailure {
            seed: config.seed,
            threads: config.threads,
            violation,
            sessions,
        })),
    }
}

fn decode_counter(value: Option<&[u8]>) -> u64 {
    match value {
        Some(bytes) if bytes.len() == 8 => {
            u64::from_be_bytes(bytes.try_into().expect("length checked"))
        }
        _ => 0,
    }
}

fn pick_key(rng: &mut FuzzRng, cfg: &FuzzConfig) -> u64 {
    let hot = cfg.hot_keys.clamp(1, cfg.keys);
    if rng.chance(cfg.hot_bias) {
        rng.next() % hot
    } else {
        rng.next() % cfg.keys
    }
}

/// A tiny deterministic generator (splitmix64 seeding, xorshift64* stream)
/// so fuzz streams do not depend on the `rand` crate's version.
struct FuzzRng(u64);

impl FuzzRng {
    fn new(seed: u64, stream: u64) -> Self {
        // splitmix64 of (seed, stream) — decorrelates nearby seeds and
        // guarantees a non-zero xorshift state.
        let mut z = seed
            .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        FuzzRng(z | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn chance(&mut self, probability: f64) -> bool {
        if probability <= 0.0 {
            return false;
        }
        ((self.next() >> 11) as f64 / (1u64 << 53) as f64) < probability
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_run_is_serializable() {
        let outcome = run_fuzz(&FuzzConfig {
            seed: 7,
            threads: 1,
            txns_per_session: 120,
            ..FuzzConfig::default()
        })
        .expect("single-threaded history must check out");
        assert!(outcome.committed > 1);
        assert_eq!(outcome.report.sessions, 2); // setup + one fuzz session
        assert!(outcome.report.committed as u64 <= outcome.committed);
    }

    #[test]
    fn contended_run_is_serializable() {
        let outcome = run_fuzz(&FuzzConfig {
            seed: 42,
            threads: 3,
            txns_per_session: 150,
            keys: 8,
            hot_keys: 2,
            hot_bias: 0.9,
            ..FuzzConfig::default()
        })
        .expect("contended history must check out");
        assert!(outcome.committed > 1);
        assert!(outcome.report.edges > 0, "contention must produce edges");
        assert_eq!(outcome.report.sessions, 4);
    }

    #[test]
    fn failure_report_carries_seed_and_replay() {
        let failure = FuzzFailure {
            seed: 99,
            threads: 4,
            violation: Violation::DuplicateVersion {
                table: 0,
                key: vec![1],
                tid: silo_core::Tid::new(1, 1),
            },
            sessions: Vec::new(),
        };
        let text = failure.to_string();
        assert!(text.contains("seed=99"));
        assert!(text.contains("SILO_FUZZ_SEED=99"));
        assert!(text.contains("SILO_FUZZ_THREADS=4"));
    }

    #[test]
    fn rng_streams_are_deterministic_and_distinct() {
        let mut a1 = FuzzRng::new(5, 0);
        let mut a2 = FuzzRng::new(5, 0);
        let mut b = FuzzRng::new(5, 1);
        let s1: Vec<u64> = (0..8).map(|_| a1.next()).collect();
        let s2: Vec<u64> = (0..8).map(|_| a2.next()).collect();
        let s3: Vec<u64> = (0..8).map(|_| b.next()).collect();
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
    }
}
