//! # silo-wl — workloads, baselines and the benchmark driver for silo-rs
//!
//! Implements everything the paper's evaluation (§5) runs on top of the
//! engine:
//!
//! * [`driver`] — the multi-threaded benchmark driver: per-thread workers,
//!   fixed-duration runs, throughput / abort / latency accounting (§5.1).
//! * [`fuzz`] — the adversarial-correctness scenario fuzzer: seeded random
//!   multi-key transactions over a hot key space, recorded through
//!   `silo-check` and verified serializable after every run.
//! * [`ycsb`] — the paper's YCSB-A variant: 80/20 read / read-modify-write,
//!   100-byte records, uniform keys (§5.2, §5.6).
//! * [`keyvalue`] — the Key-Value baseline: the bare concurrent B+-tree with
//!   no transaction bookkeeping (§5.2).
//! * [`tpcc`] — a full TPC-C implementation: schema, loaders, all five
//!   transactions, the standard mix, remote-warehouse and FastIds knobs, and
//!   an optional per-warehouse physical split (§5.3–§5.5, §5.7).
//! * [`partitioned`] — the H-Store/VoltDB-style Partitioned-Store baseline:
//!   per-warehouse partitions protected by whole-partition locks acquired in
//!   sorted order, no record-level concurrency control (§5.4).

#![warn(missing_docs)]
// Raw key/value byte tuples are part of this crate's vocabulary; aliasing
// them away would obscure more than it clarifies.
#![allow(clippy::type_complexity)]

pub mod driver;
pub mod fuzz;
pub mod keyvalue;
pub mod partitioned;
pub mod tpcc;
pub mod ycsb;

pub use driver::{run_workload, RunOptions, RunResult, Workload};
pub use fuzz::{run_fuzz, run_fuzz_on, FuzzConfig, FuzzFailure, FuzzOutcome};
