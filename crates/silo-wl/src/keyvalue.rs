//! The **Key-Value** baseline of §5.2: "simply the concurrent B+-tree
//! underneath Silo", providing single-key gets and puts with no transaction
//! bookkeeping at all. Figure 4 compares MemSilo against this baseline to
//! show that the read/write-set tracking of the commit protocol costs almost
//! nothing.

use std::sync::Arc;

use silo_index::Tree;

/// A non-transactional key-value store over the same concurrent B+-tree used
/// by the engine. Values are stored out-of-line as leaked byte buffers
/// reachable from the tree, mirroring how Silo stores records, so that a get
/// touches the same number of cache lines as an engine read.
pub struct KeyValueStore {
    tree: Tree,
}

impl Default for KeyValueStore {
    fn default() -> Self {
        Self::new()
    }
}

struct ValueBox {
    data: Vec<u8>,
}

impl KeyValueStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        KeyValueStore { tree: Tree::new() }
    }

    /// Creates a store wrapped in an [`Arc`] for sharing across threads.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// Index statistics of the underlying tree (for the benchmark harness).
    pub fn index_stats(&self) -> silo_index::IndexStats {
        self.tree.stats()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Single-key get: copies the current value, if any.
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        let ptr = self.tree.get(key)?;
        // SAFETY: values are leaked `ValueBox`es that are never freed while
        // the store is alive (puts replace the pointer but old boxes are
        // intentionally retained until drop, exactly so lock-free readers
        // cannot observe freed memory).
        let value = unsafe { &*(ptr as *const ValueBox) };
        Some(value.data.clone())
    }

    /// Single-key put: inserts or replaces the value.
    pub fn put(&self, key: &[u8], value: &[u8]) {
        let boxed = Box::into_raw(Box::new(ValueBox {
            data: value.to_vec(),
        })) as u64;
        self.tree.upsert(key, boxed);
    }

    /// Read-modify-write of a single key (the YCSB "update" op in the
    /// paper's variant): reads the value, applies `f`, writes the result.
    /// Not atomic — this is the non-transactional baseline.
    pub fn read_modify_write(&self, key: &[u8], f: impl FnOnce(&mut Vec<u8>)) -> bool {
        match self.get(key) {
            Some(mut value) => {
                f(&mut value);
                self.put(key, &value);
                true
            }
            None => false,
        }
    }

    /// Range scan (ascending), at most `limit` entries.
    pub fn scan(
        &self,
        start: &[u8],
        end: Option<&[u8]>,
        limit: Option<usize>,
    ) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.tree
            .scan(start, end, limit)
            .entries
            .into_iter()
            .map(|(k, ptr)| {
                // SAFETY: as in `get`.
                let value = unsafe { &*(ptr as *const ValueBox) };
                (k, value.data.clone())
            })
            .collect()
    }
}

impl Drop for KeyValueStore {
    fn drop(&mut self) {
        // Free the latest value boxes. Superseded boxes from puts over
        // existing keys are intentionally leaked (the baseline has no epoch
        // reclamation); benchmark processes are short-lived.
        for (_, ptr) in self.tree.scan(b"", None, None).entries {
            // SAFETY: exclusive access in drop; each latest pointer is freed
            // exactly once.
            unsafe { drop(Box::from_raw(ptr as *mut ValueBox)) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let kv = KeyValueStore::new();
        assert!(kv.is_empty());
        kv.put(b"a", b"1");
        kv.put(b"b", b"2");
        assert_eq!(kv.get(b"a"), Some(b"1".to_vec()));
        assert_eq!(kv.get(b"b"), Some(b"2".to_vec()));
        assert_eq!(kv.get(b"c"), None);
        kv.put(b"a", b"updated");
        assert_eq!(kv.get(b"a"), Some(b"updated".to_vec()));
        assert_eq!(kv.len(), 2);
    }

    #[test]
    fn read_modify_write_applies_closure() {
        let kv = KeyValueStore::new();
        kv.put(b"counter", &0u64.to_be_bytes());
        for _ in 0..10 {
            kv.read_modify_write(b"counter", |v| {
                let n = u64::from_be_bytes(v.as_slice().try_into().unwrap());
                *v = (n + 1).to_be_bytes().to_vec();
            });
        }
        assert_eq!(kv.get(b"counter"), Some(10u64.to_be_bytes().to_vec()));
        assert!(!kv.read_modify_write(b"missing", |_| {}));
    }

    #[test]
    fn scan_is_ordered() {
        let kv = KeyValueStore::new();
        for i in (0..50u32).rev() {
            kv.put(format!("k{:02}", i).as_bytes(), &i.to_be_bytes());
        }
        let rows = kv.scan(b"k10", Some(b"k20"), None);
        assert_eq!(rows.len(), 10);
        assert_eq!(rows[0].0, b"k10".to_vec());
        let limited = kv.scan(b"", None, Some(7));
        assert_eq!(limited.len(), 7);
    }

    #[test]
    fn concurrent_puts_and_gets() {
        let kv = KeyValueStore::shared();
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let kv = Arc::clone(&kv);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u32 {
                    let key = format!("t{}k{}", t, i);
                    kv.put(key.as_bytes(), &i.to_be_bytes());
                    assert_eq!(kv.get(key.as_bytes()), Some(i.to_be_bytes().to_vec()));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(kv.len(), 2000);
    }
}
