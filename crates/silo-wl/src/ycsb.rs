//! The paper's YCSB-A variant (§5.2, §5.6).
//!
//! Differences from stock YCSB-A, exactly as described in the paper: the
//! read/write ratio is 80/20 instead of 50/50, writes are read-modify-writes
//! executed as a single transaction, records are 100 bytes, and keys are
//! sampled uniformly from the key space.

use std::cell::RefCell;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::Rng;

use silo_core::{Database, TableId, Worker};

use crate::driver::Workload;
use crate::keyvalue::KeyValueStore;

/// Size of a YCSB record in bytes (paper: 100 bytes).
pub const RECORD_SIZE: usize = 100;

/// YCSB workload parameters.
#[derive(Debug, Clone)]
pub struct YcsbConfig {
    /// Number of keys pre-loaded into the table (the paper uses 160 M; scale
    /// this to the machine).
    pub keys: u64,
    /// Probability of a read operation (the paper's variant uses 0.8; the
    /// rest are read-modify-writes).
    pub read_fraction: f64,
    /// Record payload size in bytes.
    pub record_size: usize,
}

impl Default for YcsbConfig {
    fn default() -> Self {
        YcsbConfig {
            keys: 100_000,
            read_fraction: 0.8,
            record_size: RECORD_SIZE,
        }
    }
}

/// Encodes a YCSB key (fixed-width, zero-padded so ordering is stable).
pub fn ycsb_key(i: u64) -> [u8; 16] {
    let mut key = [0u8; 16];
    key[..8].copy_from_slice(b"usertbl:");
    key[8..].copy_from_slice(&i.to_be_bytes());
    key
}

/// Generates the deterministic payload for key `i` (used by loading and by
/// read-modify-writes, which rewrite the record with a rotated payload).
pub fn ycsb_value(i: u64, size: usize) -> Vec<u8> {
    let mut v = vec![0u8; size];
    let seed = i.to_le_bytes();
    for (idx, byte) in v.iter_mut().enumerate() {
        *byte = seed[idx % 8].wrapping_add(idx as u8);
    }
    v
}

/// Loads the YCSB table into a Silo database, returning the table id.
pub fn load_silo(db: &Arc<Database>, config: &YcsbConfig) -> TableId {
    let table = db
        .table_id("ycsb")
        .or_else(|_| db.create_table("ycsb"))
        .expect("create ycsb table");
    let mut worker = db.register_worker();
    let mut i = 0u64;
    while i < config.keys {
        let mut txn = worker.begin();
        let end = (i + 1024).min(config.keys);
        while i < end {
            txn.write(table, &ycsb_key(i), &ycsb_value(i, config.record_size))
                .expect("load write");
            i += 1;
        }
        txn.commit().expect("load commit");
    }
    table
}

/// Loads the YCSB table into the non-transactional Key-Value baseline.
pub fn load_keyvalue(kv: &KeyValueStore, config: &YcsbConfig) {
    for i in 0..config.keys {
        kv.put(&ycsb_key(i), &ycsb_value(i, config.record_size));
    }
}

/// The transactional YCSB workload (MemSilo / MemSilo+GlobalTID in Fig. 4,
/// depending on the database configuration).
pub struct YcsbSilo {
    config: YcsbConfig,
    table: TableId,
}

impl YcsbSilo {
    /// Creates the workload for a pre-loaded table.
    pub fn new(config: YcsbConfig, table: TableId) -> Self {
        YcsbSilo { config, table }
    }
}

thread_local! {
    /// Reusable value buffer so the benchmark loop itself allocates nothing
    /// in steady state (the engine's context/arena/pool handle the rest).
    static VALUE_BUF: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
}

impl Workload for YcsbSilo {
    fn run_one(&self, worker: &mut Worker, rng: &mut SmallRng, _thread: usize) -> bool {
        let key_index = rng.gen_range(0..self.config.keys);
        let key = ycsb_key(key_index);
        let is_read = rng.gen_bool(self.config.read_fraction);
        let mut txn = worker.begin();
        let outcome = VALUE_BUF.with(|buf| {
            let value = &mut *buf.borrow_mut();
            (|| -> Result<(), silo_core::Abort> {
                if is_read {
                    let _ = txn.read_into(self.table, &key, value)?;
                } else {
                    // Read-modify-write in a single transaction (§5.2 (b)).
                    txn.read_into(self.table, &key, value)?;
                    if value.len() < self.config.record_size {
                        value.resize(self.config.record_size, 0);
                    }
                    for b in value.iter_mut() {
                        *b = b.wrapping_add(1);
                    }
                    txn.write(self.table, &key, value)?;
                }
                Ok(())
            })()
        });
        match outcome {
            Ok(()) => txn.commit().is_ok(),
            Err(_) => {
                txn.abort();
                false
            }
        }
    }
}

/// The same operation mix against the non-transactional Key-Value baseline.
pub struct YcsbKeyValue {
    config: YcsbConfig,
    store: Arc<KeyValueStore>,
}

impl YcsbKeyValue {
    /// Creates the workload over a pre-loaded store.
    pub fn new(config: YcsbConfig, store: Arc<KeyValueStore>) -> Self {
        YcsbKeyValue { config, store }
    }
}

impl Workload for YcsbKeyValue {
    fn run_one(&self, _worker: &mut Worker, rng: &mut SmallRng, _thread: usize) -> bool {
        let key_index = rng.gen_range(0..self.config.keys);
        let key = ycsb_key(key_index);
        if rng.gen_bool(self.config.read_fraction) {
            self.store.get(&key).is_some()
        } else {
            self.store.read_modify_write(&key, |value| {
                for b in value.iter_mut() {
                    *b = b.wrapping_add(1);
                }
            })
        }
    }
}

/// A 100%-read-modify-write YCSB variant used by the snapshot space-overhead
/// experiment (§5.6): "every transaction is a read-modify-write operation on
/// a single record".
pub struct YcsbRmwOnly {
    config: YcsbConfig,
    table: TableId,
}

impl YcsbRmwOnly {
    /// Creates the workload for a pre-loaded table.
    pub fn new(config: YcsbConfig, table: TableId) -> Self {
        YcsbRmwOnly { config, table }
    }
}

impl Workload for YcsbRmwOnly {
    fn run_one(&self, worker: &mut Worker, rng: &mut SmallRng, _thread: usize) -> bool {
        let key = ycsb_key(rng.gen_range(0..self.config.keys));
        let mut txn = worker.begin();
        let outcome = VALUE_BUF.with(|buf| {
            let value = &mut *buf.borrow_mut();
            (|| -> Result<(), silo_core::Abort> {
                txn.read_into(self.table, &key, value)?;
                if value.len() < self.config.record_size {
                    value.resize(self.config.record_size, 0);
                }
                for b in value.iter_mut() {
                    *b = b.wrapping_mul(31).wrapping_add(7);
                }
                txn.write(self.table, &key, value)?;
                Ok(())
            })()
        });
        match outcome {
            Ok(()) => txn.commit().is_ok(),
            Err(_) => {
                txn.abort();
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::RunOptions;
    use silo_core::SiloConfig;
    use std::time::Duration;

    fn small_config() -> YcsbConfig {
        YcsbConfig {
            keys: 1000,
            ..Default::default()
        }
    }

    #[test]
    fn keys_are_fixed_width_and_ordered() {
        assert!(ycsb_key(1) < ycsb_key(2));
        assert!(ycsb_key(255) < ycsb_key(256));
        assert_eq!(ycsb_key(7).len(), 16);
        assert_eq!(ycsb_value(3, 100).len(), 100);
        assert_ne!(ycsb_value(3, 100), ycsb_value(4, 100));
    }

    #[test]
    fn silo_workload_runs_against_loaded_table() {
        let db = Database::open(SiloConfig::for_testing().with_spawn_epoch_advancer(true));
        let cfg = small_config();
        let table = load_silo(&db, &cfg);
        assert_eq!(db.table(table).approximate_len(), 1000);
        let result = RunOptions::default()
            .with_threads(2)
            .with_duration(Duration::from_millis(100))
            .run(&db, Arc::new(YcsbSilo::new(cfg, table)));
        assert!(result.committed > 0);
        db.stop_epoch_advancer();
    }

    #[test]
    fn keyvalue_workload_runs_against_loaded_store() {
        let db = Database::open(SiloConfig::for_testing());
        let cfg = small_config();
        let kv = KeyValueStore::shared();
        load_keyvalue(&kv, &cfg);
        assert_eq!(kv.len(), 1000);
        let result = RunOptions::default()
            .with_threads(2)
            .with_duration(Duration::from_millis(50))
            .run(&db, Arc::new(YcsbKeyValue::new(cfg, kv)));
        assert!(result.committed > 0);
    }

    #[test]
    fn rmw_only_workload_updates_records() {
        let db = Database::open(SiloConfig::for_testing().with_spawn_epoch_advancer(true));
        let cfg = YcsbConfig {
            keys: 100,
            ..Default::default()
        };
        let table = load_silo(&db, &cfg);
        let result = RunOptions::default()
            .with_duration(Duration::from_millis(50))
            .run(&db, Arc::new(YcsbRmwOnly::new(cfg, table)));
        assert!(result.committed > 0);
        db.stop_epoch_advancer();
    }
}
