//! TPC-C schema: key encodings and row (record value) encodings.
//!
//! Keys are big-endian compositions of the table's primary-key columns so the
//! B+-tree's byte order matches the logical order (the property the range
//! transactions — delivery, order-status, stock-level — rely on). Rows are
//! fixed-layout binary encodings with length-prefixed strings.

/// The nine TPC-C base tables plus the two secondary indexes Silo maintains
/// explicitly (§4.7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TpccTable {
    /// WAREHOUSE
    Warehouse,
    /// DISTRICT
    District,
    /// CUSTOMER
    Customer,
    /// Secondary index: (w, d, last name, c_id) → c_id
    CustomerNameIndex,
    /// HISTORY
    History,
    /// NEW-ORDER
    NewOrder,
    /// ORDER
    Order,
    /// Secondary index: (w, d, c_id, o_id) → o_id
    OrderCustomerIndex,
    /// ORDER-LINE
    OrderLine,
    /// ITEM
    Item,
    /// STOCK
    Stock,
}

/// All TPC-C tables in declaration order.
pub const ALL_TABLES: [TpccTable; 11] = [
    TpccTable::Warehouse,
    TpccTable::District,
    TpccTable::Customer,
    TpccTable::CustomerNameIndex,
    TpccTable::History,
    TpccTable::NewOrder,
    TpccTable::Order,
    TpccTable::OrderCustomerIndex,
    TpccTable::OrderLine,
    TpccTable::Item,
    TpccTable::Stock,
];

impl TpccTable {
    /// Stable name used for catalog table names.
    pub fn name(&self) -> &'static str {
        match self {
            TpccTable::Warehouse => "warehouse",
            TpccTable::District => "district",
            TpccTable::Customer => "customer",
            TpccTable::CustomerNameIndex => "customer_name_idx",
            TpccTable::History => "history",
            TpccTable::NewOrder => "new_order",
            TpccTable::Order => "oorder",
            TpccTable::OrderCustomerIndex => "order_customer_idx",
            TpccTable::OrderLine => "order_line",
            TpccTable::Item => "item",
            TpccTable::Stock => "stock",
        }
    }

    /// Index of this table within [`ALL_TABLES`].
    pub fn index(&self) -> usize {
        ALL_TABLES
            .iter()
            .position(|t| t == self)
            .expect("in table list")
    }
}

// ---------------------------------------------------------------------------
// Key encodings
// ---------------------------------------------------------------------------

/// WAREHOUSE primary key.
pub fn warehouse_key(w_id: u32) -> Vec<u8> {
    w_id.to_be_bytes().to_vec()
}

/// DISTRICT primary key.
pub fn district_key(w_id: u32, d_id: u32) -> Vec<u8> {
    let mut k = Vec::with_capacity(8);
    k.extend_from_slice(&w_id.to_be_bytes());
    k.extend_from_slice(&d_id.to_be_bytes());
    k
}

/// CUSTOMER primary key.
pub fn customer_key(w_id: u32, d_id: u32, c_id: u32) -> Vec<u8> {
    let mut k = Vec::with_capacity(12);
    k.extend_from_slice(&w_id.to_be_bytes());
    k.extend_from_slice(&d_id.to_be_bytes());
    k.extend_from_slice(&c_id.to_be_bytes());
    k
}

/// CUSTOMER last-name secondary index key.
pub fn customer_name_key(w_id: u32, d_id: u32, last: &[u8], c_id: u32) -> Vec<u8> {
    let mut k = Vec::with_capacity(12 + 16);
    k.extend_from_slice(&w_id.to_be_bytes());
    k.extend_from_slice(&d_id.to_be_bytes());
    let mut padded = [0u8; 16];
    let n = last.len().min(16);
    padded[..n].copy_from_slice(&last[..n]);
    k.extend_from_slice(&padded);
    k.extend_from_slice(&c_id.to_be_bytes());
    k
}

/// Prefix of the CUSTOMER last-name index for a given name.
pub fn customer_name_prefix(w_id: u32, d_id: u32, last: &[u8]) -> Vec<u8> {
    let mut k = customer_name_key(w_id, d_id, last, 0);
    k.truncate(8 + 16);
    k
}

/// HISTORY primary key (TPC-C history has no key; a per-insert unique
/// sequence keeps entries distinct).
pub fn history_key(w_id: u32, d_id: u32, c_id: u32, seq: u64) -> Vec<u8> {
    let mut k = customer_key(w_id, d_id, c_id);
    k.extend_from_slice(&seq.to_be_bytes());
    k
}

/// NEW-ORDER primary key.
pub fn new_order_key(w_id: u32, d_id: u32, o_id: u32) -> Vec<u8> {
    let mut k = Vec::with_capacity(12);
    k.extend_from_slice(&w_id.to_be_bytes());
    k.extend_from_slice(&d_id.to_be_bytes());
    k.extend_from_slice(&o_id.to_be_bytes());
    k
}

/// Prefix covering every NEW-ORDER row of a district.
pub fn new_order_district_prefix(w_id: u32, d_id: u32) -> Vec<u8> {
    district_key(w_id, d_id)
}

/// ORDER primary key.
pub fn order_key(w_id: u32, d_id: u32, o_id: u32) -> Vec<u8> {
    new_order_key(w_id, d_id, o_id)
}

/// ORDER-by-customer secondary index key.
pub fn order_customer_key(w_id: u32, d_id: u32, c_id: u32, o_id: u32) -> Vec<u8> {
    let mut k = customer_key(w_id, d_id, c_id);
    k.extend_from_slice(&o_id.to_be_bytes());
    k
}

/// Prefix covering a customer's orders in the secondary index.
pub fn order_customer_prefix(w_id: u32, d_id: u32, c_id: u32) -> Vec<u8> {
    customer_key(w_id, d_id, c_id)
}

/// ORDER-LINE primary key.
pub fn order_line_key(w_id: u32, d_id: u32, o_id: u32, ol_number: u32) -> Vec<u8> {
    let mut k = order_key(w_id, d_id, o_id);
    k.extend_from_slice(&ol_number.to_be_bytes());
    k
}

/// Prefix covering every order line of one order.
pub fn order_line_prefix(w_id: u32, d_id: u32, o_id: u32) -> Vec<u8> {
    order_key(w_id, d_id, o_id)
}

/// ITEM primary key.
pub fn item_key(i_id: u32) -> Vec<u8> {
    i_id.to_be_bytes().to_vec()
}

/// STOCK primary key.
pub fn stock_key(w_id: u32, i_id: u32) -> Vec<u8> {
    let mut k = Vec::with_capacity(8);
    k.extend_from_slice(&w_id.to_be_bytes());
    k.extend_from_slice(&i_id.to_be_bytes());
    k
}

// ---------------------------------------------------------------------------
// Row encodings
// ---------------------------------------------------------------------------

fn put_str(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    assert!(bytes.len() <= u16::MAX as usize);
    out.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
    out.extend_from_slice(bytes);
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }
    fn bytes(&mut self, n: usize) -> &'a [u8] {
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        out
    }
    fn u16(&mut self) -> u16 {
        u16::from_le_bytes(self.bytes(2).try_into().expect("2 bytes"))
    }
    fn u32(&mut self) -> u32 {
        u32::from_le_bytes(self.bytes(4).try_into().expect("4 bytes"))
    }
    fn u64(&mut self) -> u64 {
        u64::from_le_bytes(self.bytes(8).try_into().expect("8 bytes"))
    }
    fn i64(&mut self) -> i64 {
        i64::from_le_bytes(self.bytes(8).try_into().expect("8 bytes"))
    }
    fn string(&mut self) -> String {
        let len = self.u16() as usize;
        String::from_utf8_lossy(self.bytes(len)).into_owned()
    }
}

macro_rules! row_common {
    ($name:ident) => {
        impl $name {
            /// Decodes a row previously produced by [`Self::encode`].
            pub fn decode(data: &[u8]) -> Self {
                Self::read(&mut Reader::new(data))
            }
        }
    };
}

/// WAREHOUSE row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarehouseRow {
    /// Warehouse name.
    pub name: String,
    /// Sales tax in basis points (e.g. 1250 = 12.5%).
    pub tax_bp: u32,
    /// Year-to-date payments in cents.
    pub ytd_cents: u64,
}

row_common!(WarehouseRow);
impl WarehouseRow {
    /// Encodes the row.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        out.extend_from_slice(&self.tax_bp.to_le_bytes());
        out.extend_from_slice(&self.ytd_cents.to_le_bytes());
        put_str(&mut out, &self.name);
        out
    }
    fn read(r: &mut Reader<'_>) -> Self {
        WarehouseRow {
            tax_bp: r.u32(),
            ytd_cents: r.u64(),
            name: r.string(),
        }
    }
}

/// DISTRICT row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistrictRow {
    /// District name.
    pub name: String,
    /// Sales tax in basis points.
    pub tax_bp: u32,
    /// Year-to-date payments in cents.
    pub ytd_cents: u64,
    /// Next order id to assign (`D_NEXT_O_ID`).
    pub next_o_id: u32,
}

row_common!(DistrictRow);
impl DistrictRow {
    /// Encodes the row.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        out.extend_from_slice(&self.tax_bp.to_le_bytes());
        out.extend_from_slice(&self.ytd_cents.to_le_bytes());
        out.extend_from_slice(&self.next_o_id.to_le_bytes());
        put_str(&mut out, &self.name);
        out
    }
    fn read(r: &mut Reader<'_>) -> Self {
        DistrictRow {
            tax_bp: r.u32(),
            ytd_cents: r.u64(),
            next_o_id: r.u32(),
            name: r.string(),
        }
    }
}

/// CUSTOMER row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CustomerRow {
    /// First name.
    pub first: String,
    /// Last name (also indexed by [`customer_name_key`]).
    pub last: String,
    /// Balance in cents (may go negative).
    pub balance_cents: i64,
    /// Year-to-date payment in cents.
    pub ytd_payment_cents: u64,
    /// Number of payments.
    pub payment_cnt: u32,
    /// Number of deliveries.
    pub delivery_cnt: u32,
    /// Discount in basis points.
    pub discount_bp: u32,
    /// Credit flag ("GC" / "BC").
    pub credit: [u8; 2],
    /// Miscellaneous data (grown by bad-credit payments).
    pub data: String,
}

row_common!(CustomerRow);
impl CustomerRow {
    /// Encodes the row.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(96);
        out.extend_from_slice(&self.balance_cents.to_le_bytes());
        out.extend_from_slice(&self.ytd_payment_cents.to_le_bytes());
        out.extend_from_slice(&self.payment_cnt.to_le_bytes());
        out.extend_from_slice(&self.delivery_cnt.to_le_bytes());
        out.extend_from_slice(&self.discount_bp.to_le_bytes());
        out.extend_from_slice(&self.credit);
        put_str(&mut out, &self.first);
        put_str(&mut out, &self.last);
        put_str(&mut out, &self.data);
        out
    }
    fn read(r: &mut Reader<'_>) -> Self {
        CustomerRow {
            balance_cents: r.i64(),
            ytd_payment_cents: r.u64(),
            payment_cnt: r.u32(),
            delivery_cnt: r.u32(),
            discount_bp: r.u32(),
            credit: r.bytes(2).try_into().expect("2 bytes"),
            first: r.string(),
            last: r.string(),
            data: r.string(),
        }
    }
}

/// HISTORY row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryRow {
    /// Payment amount in cents.
    pub amount_cents: u64,
    /// Event timestamp (microseconds since an arbitrary origin).
    pub date: u64,
    /// Free-form data.
    pub data: String,
}

row_common!(HistoryRow);
impl HistoryRow {
    /// Encodes the row.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        out.extend_from_slice(&self.amount_cents.to_le_bytes());
        out.extend_from_slice(&self.date.to_le_bytes());
        put_str(&mut out, &self.data);
        out
    }
    fn read(r: &mut Reader<'_>) -> Self {
        HistoryRow {
            amount_cents: r.u64(),
            date: r.u64(),
            data: r.string(),
        }
    }
}

/// ORDER row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderRow {
    /// Ordering customer.
    pub c_id: u32,
    /// Entry timestamp.
    pub entry_d: u64,
    /// Carrier id, 0 while undelivered.
    pub carrier_id: u32,
    /// Number of order lines.
    pub ol_cnt: u32,
    /// Whether every line is supplied by the home warehouse.
    pub all_local: bool,
}

row_common!(OrderRow);
impl OrderRow {
    /// Encodes the row.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24);
        out.extend_from_slice(&self.c_id.to_le_bytes());
        out.extend_from_slice(&self.entry_d.to_le_bytes());
        out.extend_from_slice(&self.carrier_id.to_le_bytes());
        out.extend_from_slice(&self.ol_cnt.to_le_bytes());
        out.push(self.all_local as u8);
        out
    }
    fn read(r: &mut Reader<'_>) -> Self {
        OrderRow {
            c_id: r.u32(),
            entry_d: r.u64(),
            carrier_id: r.u32(),
            ol_cnt: r.u32(),
            all_local: r.bytes(1)[0] != 0,
        }
    }
}

/// ORDER-LINE row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderLineRow {
    /// Item ordered.
    pub i_id: u32,
    /// Supplying warehouse.
    pub supply_w_id: u32,
    /// Delivery timestamp, 0 while undelivered.
    pub delivery_d: u64,
    /// Quantity ordered.
    pub quantity: u32,
    /// Line amount in cents.
    pub amount_cents: u64,
    /// District information copied from STOCK.
    pub dist_info: [u8; 24],
}

row_common!(OrderLineRow);
impl OrderLineRow {
    /// Encodes the row.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(56);
        out.extend_from_slice(&self.i_id.to_le_bytes());
        out.extend_from_slice(&self.supply_w_id.to_le_bytes());
        out.extend_from_slice(&self.delivery_d.to_le_bytes());
        out.extend_from_slice(&self.quantity.to_le_bytes());
        out.extend_from_slice(&self.amount_cents.to_le_bytes());
        out.extend_from_slice(&self.dist_info);
        out
    }
    fn read(r: &mut Reader<'_>) -> Self {
        OrderLineRow {
            i_id: r.u32(),
            supply_w_id: r.u32(),
            delivery_d: r.u64(),
            quantity: r.u32(),
            amount_cents: r.u64(),
            dist_info: r.bytes(24).try_into().expect("24 bytes"),
        }
    }
}

/// ITEM row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItemRow {
    /// Item name.
    pub name: String,
    /// Price in cents.
    pub price_cents: u64,
    /// Free-form data; contains "ORIGINAL" for some items.
    pub data: String,
}

row_common!(ItemRow);
impl ItemRow {
    /// Encodes the row.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(&self.price_cents.to_le_bytes());
        put_str(&mut out, &self.name);
        put_str(&mut out, &self.data);
        out
    }
    fn read(r: &mut Reader<'_>) -> Self {
        ItemRow {
            price_cents: r.u64(),
            name: r.string(),
            data: r.string(),
        }
    }
}

/// STOCK row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StockRow {
    /// Quantity on hand (can dip low; replenished by +91 per TPC-C rules).
    pub quantity: i32,
    /// Year-to-date quantity sold.
    pub ytd: u64,
    /// Number of orders that touched this stock entry.
    pub order_cnt: u32,
    /// Number of remote orders that touched this stock entry.
    pub remote_cnt: u32,
    /// District information string.
    pub dist_info: [u8; 24],
    /// Free-form data.
    pub data: String,
}

row_common!(StockRow);
impl StockRow {
    /// Encodes the row.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(80);
        out.extend_from_slice(&self.quantity.to_le_bytes());
        out.extend_from_slice(&self.ytd.to_le_bytes());
        out.extend_from_slice(&self.order_cnt.to_le_bytes());
        out.extend_from_slice(&self.remote_cnt.to_le_bytes());
        out.extend_from_slice(&self.dist_info);
        put_str(&mut out, &self.data);
        out
    }
    fn read(r: &mut Reader<'_>) -> Self {
        StockRow {
            quantity: i32::from_le_bytes(r.bytes(4).try_into().expect("4 bytes")),
            ytd: r.u64(),
            order_cnt: r.u32(),
            remote_cnt: r.u32(),
            dist_info: r.bytes(24).try_into().expect("24 bytes"),
            data: r.string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_preserve_component_order() {
        assert!(district_key(1, 2) < district_key(1, 3));
        assert!(district_key(1, 10) < district_key(2, 1));
        assert!(order_line_key(1, 1, 5, 3) < order_line_key(1, 1, 5, 4));
        assert!(order_line_key(1, 1, 5, 15) < order_line_key(1, 1, 6, 1));
        assert!(new_order_key(3, 4, 100).starts_with(&new_order_district_prefix(3, 4)));
        assert!(order_customer_key(1, 2, 3, 9).starts_with(&order_customer_prefix(1, 2, 3)));
        assert!(customer_name_key(1, 1, b"BARBAR", 7)
            .starts_with(&customer_name_prefix(1, 1, b"BARBAR")));
        assert!(customer_name_prefix(1, 1, b"BARBAR") < customer_name_prefix(1, 1, b"BARES"));
    }

    #[test]
    fn row_roundtrips() {
        let w = WarehouseRow {
            name: "W-One".into(),
            tax_bp: 1850,
            ytd_cents: 30_000_000,
        };
        assert_eq!(WarehouseRow::decode(&w.encode()), w);

        let d = DistrictRow {
            name: "D-Five".into(),
            tax_bp: 975,
            ytd_cents: 3_000_000,
            next_o_id: 3001,
        };
        assert_eq!(DistrictRow::decode(&d.encode()), d);

        let c = CustomerRow {
            first: "ALICE".into(),
            last: "BARBARBAR".into(),
            balance_cents: -1000,
            ytd_payment_cents: 10_00,
            payment_cnt: 1,
            delivery_cnt: 0,
            discount_bp: 500,
            credit: *b"GC",
            data: "x".repeat(100),
        };
        assert_eq!(CustomerRow::decode(&c.encode()), c);

        let o = OrderRow {
            c_id: 7,
            entry_d: 123456,
            carrier_id: 0,
            ol_cnt: 11,
            all_local: true,
        };
        assert_eq!(OrderRow::decode(&o.encode()), o);

        let ol = OrderLineRow {
            i_id: 42,
            supply_w_id: 3,
            delivery_d: 0,
            quantity: 5,
            amount_cents: 12_345,
            dist_info: [7u8; 24],
        };
        assert_eq!(OrderLineRow::decode(&ol.encode()), ol);

        let item = ItemRow {
            name: "widget".into(),
            price_cents: 99_99,
            data: "ORIGINAL".into(),
        };
        assert_eq!(ItemRow::decode(&item.encode()), item);

        let s = StockRow {
            quantity: 85,
            ytd: 10,
            order_cnt: 3,
            remote_cnt: 1,
            dist_info: [9u8; 24],
            data: "stock data".into(),
        };
        assert_eq!(StockRow::decode(&s.encode()), s);

        let h = HistoryRow {
            amount_cents: 4242,
            date: 999,
            data: "hist".into(),
        };
        assert_eq!(HistoryRow::decode(&h.encode()), h);
    }

    #[test]
    fn table_names_are_unique() {
        use std::collections::HashSet;
        let names: HashSet<_> = ALL_TABLES.iter().map(|t| t.name()).collect();
        assert_eq!(names.len(), ALL_TABLES.len());
        for (i, t) in ALL_TABLES.iter().enumerate() {
            assert_eq!(t.index(), i);
        }
    }
}
