//! A full TPC-C implementation on top of the Silo engine (paper §5.3–§5.5).
//!
//! The module provides the schema ([`schema`]), the initial-population loader
//! ([`load`]), the five TPC-C transactions ([`txns`]), and [`TpccWorkload`],
//! a [`crate::driver::Workload`] running a configurable transaction mix with
//! the knobs the paper's experiments vary:
//!
//! * `remote_item_probability` — probability that a new-order line is
//!   supplied by a remote warehouse (swept in Figure 8);
//! * `fast_ids` — generate new-order ids in a separate transaction
//!   (`MemSilo+FastIds`, Figure 9);
//! * `stock_level_on_snapshot` — run stock-level as a read-only snapshot
//!   transaction or as a regular transaction (`MemSilo+NoSS`, Figure 10);
//! * [`TableSplit::PerWarehouse`] — physically split every table per
//!   warehouse (`MemSilo+Split`, Figure 8).

pub mod check;
pub mod schema;
pub mod txns;

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::Rng;

use silo_core::{Database, TableId, Worker};

use crate::driver::Workload;
use schema::*;

/// Scale and behaviour knobs for TPC-C.
#[derive(Debug, Clone)]
pub struct TpccConfig {
    /// Number of warehouses.
    pub warehouses: u32,
    /// Districts per warehouse (TPC-C specifies 10).
    pub districts_per_warehouse: u32,
    /// Customers per district (TPC-C specifies 3000; scale down for small
    /// machines / tests).
    pub customers_per_district: u32,
    /// Initially loaded orders per district (TPC-C specifies 3000).
    pub initial_orders_per_district: u32,
    /// Number of items (TPC-C specifies 100 000).
    pub items: u32,
    /// Probability that a single new-order line draws from a remote
    /// warehouse (TPC-C specifies 0.01; Figure 8 sweeps it).
    pub remote_item_probability: f64,
    /// Probability that payment pays through a remote warehouse (TPC-C: 0.15).
    pub remote_payment_probability: f64,
    /// Generate new-order ids in a separate transaction (`MemSilo+FastIds`).
    pub fast_ids: bool,
    /// Run stock-level on a snapshot (`MemSilo` in Fig. 10) or as a regular
    /// read/write transaction (`MemSilo+NoSS`).
    pub stock_level_on_snapshot: bool,
    /// Physical table layout.
    pub split: TableSplit,
    /// Transaction mix.
    pub mix: TpccMix,
}

impl Default for TpccConfig {
    fn default() -> Self {
        TpccConfig {
            warehouses: 1,
            districts_per_warehouse: 10,
            customers_per_district: 300,
            initial_orders_per_district: 300,
            items: 1000,
            remote_item_probability: 0.01,
            remote_payment_probability: 0.15,
            fast_ids: false,
            stock_level_on_snapshot: true,
            split: TableSplit::Shared,
            mix: TpccMix::standard(),
        }
    }
}

impl TpccConfig {
    /// A configuration small enough for unit tests.
    pub fn tiny() -> Self {
        TpccConfig {
            warehouses: 2,
            districts_per_warehouse: 2,
            customers_per_district: 20,
            initial_orders_per_district: 20,
            items: 50,
            ..Default::default()
        }
    }

    /// Paper-style scaling: warehouses = workers, other dimensions at the
    /// given fraction of the spec sizes (1.0 = full TPC-C).
    pub fn scaled(warehouses: u32, scale: f64) -> Self {
        let s = |spec: u32| ((spec as f64 * scale).round() as u32).max(1);
        TpccConfig {
            warehouses,
            districts_per_warehouse: 10,
            customers_per_district: s(3000),
            initial_orders_per_district: s(3000),
            items: s(100_000),
            ..Default::default()
        }
    }
}

/// How tables are physically laid out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableSplit {
    /// One shared tree per table (Silo's default shared-memory design).
    Shared,
    /// One tree per (table, warehouse) — the `MemSilo+Split` variant of
    /// Figure 8 (everything else, including the commit protocol, unchanged).
    PerWarehouse,
}

/// The TPC-C transaction mix, in percent (must sum to 100).
#[derive(Debug, Clone, Copy)]
pub struct TpccMix {
    /// New-order percentage.
    pub new_order: u32,
    /// Payment percentage.
    pub payment: u32,
    /// Order-status percentage.
    pub order_status: u32,
    /// Delivery percentage.
    pub delivery: u32,
    /// Stock-level percentage.
    pub stock_level: u32,
}

impl TpccMix {
    /// The standard TPC-C mix (45/43/4/4/4).
    pub fn standard() -> Self {
        TpccMix {
            new_order: 45,
            payment: 43,
            order_status: 4,
            delivery: 4,
            stock_level: 4,
        }
    }

    /// 100% new-order (Figures 8 and 9).
    pub fn new_order_only() -> Self {
        TpccMix {
            new_order: 100,
            payment: 0,
            order_status: 0,
            delivery: 0,
            stock_level: 0,
        }
    }

    /// 50% new-order / 50% stock-level (Figure 10).
    pub fn new_order_stock_level() -> Self {
        TpccMix {
            new_order: 50,
            payment: 0,
            order_status: 0,
            delivery: 0,
            stock_level: 50,
        }
    }

    fn pick(&self, rng: &mut SmallRng) -> TxnKind {
        let total =
            self.new_order + self.payment + self.order_status + self.delivery + self.stock_level;
        debug_assert_eq!(total, 100);
        let r = rng.gen_range(0..total);
        if r < self.new_order {
            TxnKind::NewOrder
        } else if r < self.new_order + self.payment {
            TxnKind::Payment
        } else if r < self.new_order + self.payment + self.order_status {
            TxnKind::OrderStatus
        } else if r < self.new_order + self.payment + self.order_status + self.delivery {
            TxnKind::Delivery
        } else {
            TxnKind::StockLevel
        }
    }
}

/// The five TPC-C transaction types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxnKind {
    /// New-order.
    NewOrder,
    /// Payment.
    Payment,
    /// Order-status (read only).
    OrderStatus,
    /// Delivery.
    Delivery,
    /// Stock-level (read only).
    StockLevel,
}

/// Catalog handles for the TPC-C tables, shared or per-warehouse.
#[derive(Debug, Clone)]
pub struct TpccTables {
    split: TableSplit,
    /// `Shared`: one id per table. `PerWarehouse`: `warehouses × 11` ids,
    /// row-major by warehouse.
    ids: Vec<TableId>,
    warehouses: u32,
}

impl TpccTables {
    /// Creates the catalog tables for the given configuration.
    pub fn create(db: &Arc<Database>, config: &TpccConfig) -> TpccTables {
        let mut ids = Vec::new();
        match config.split {
            TableSplit::Shared => {
                for table in ALL_TABLES {
                    ids.push(db.create_table(table.name()).expect("create table"));
                }
            }
            TableSplit::PerWarehouse => {
                for w in 1..=config.warehouses {
                    for table in ALL_TABLES {
                        ids.push(
                            db.create_table(&format!("{}@w{}", table.name(), w))
                                .expect("create table"),
                        );
                    }
                }
            }
        }
        TpccTables {
            split: config.split,
            ids,
            warehouses: config.warehouses,
        }
    }

    /// Resolves the table id holding rows of `table` for warehouse `w_id`.
    pub fn id(&self, table: TpccTable, w_id: u32) -> TableId {
        match self.split {
            TableSplit::Shared => self.ids[table.index()],
            TableSplit::PerWarehouse => {
                debug_assert!(w_id >= 1 && w_id <= self.warehouses);
                self.ids[(w_id as usize - 1) * ALL_TABLES.len() + table.index()]
            }
        }
    }

    /// The item table is conceptually global; by convention warehouse 1's
    /// copy is used in the per-warehouse split (items are read-only).
    pub fn item_table(&self, w_id: u32) -> TableId {
        match self.split {
            TableSplit::Shared => self.id(TpccTable::Item, 1),
            TableSplit::PerWarehouse => self.id(TpccTable::Item, w_id),
        }
    }
}

// ---------------------------------------------------------------------------
// TPC-C random helpers (clause 2.1.6)
// ---------------------------------------------------------------------------

/// Constant `C` used by NURand for customer-id selection.
pub const NURAND_C_C_ID: u32 = 259;
/// Constant `C` used by NURand for item-id selection.
pub const NURAND_C_OL_I_ID: u32 = 7911;
/// Constant `C` used by NURand for last-name selection.
pub const NURAND_C_C_LAST: u32 = 223;

/// TPC-C non-uniform random distribution.
pub fn nurand(rng: &mut SmallRng, a: u32, c: u32, x: u32, y: u32) -> u32 {
    (((rng.gen_range(0..=a) | rng.gen_range(x..=y)) + c) % (y - x + 1)) + x
}

const NAME_SYLLABLES: [&str; 10] = [
    "BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING",
];

/// Builds a TPC-C customer last name from a number in `0..=999`.
pub fn last_name(num: u32) -> String {
    let num = num % 1000;
    format!(
        "{}{}{}",
        NAME_SYLLABLES[(num / 100) as usize],
        NAME_SYLLABLES[((num / 10) % 10) as usize],
        NAME_SYLLABLES[(num % 10) as usize]
    )
}

/// A random last name for transaction input (`NURand(255, 0, 999)`).
pub fn random_last_name(rng: &mut SmallRng) -> String {
    last_name(nurand(rng, 255, NURAND_C_C_LAST, 0, 999))
}

/// A random alphanumeric string with length in `[min, max]`.
pub fn random_string(rng: &mut SmallRng, min: usize, max: usize) -> String {
    let len = rng.gen_range(min..=max);
    (0..len)
        .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
        .collect()
}

// ---------------------------------------------------------------------------
// Loader (TPC-C clause 4.3.3, scaled)
// ---------------------------------------------------------------------------

/// Loads the initial TPC-C population. Returns the created [`TpccTables`].
pub fn load(db: &Arc<Database>, config: &TpccConfig) -> TpccTables {
    use rand::SeedableRng;
    let tables = TpccTables::create(db, config);
    let mut worker = db.register_worker();
    let mut rng = SmallRng::seed_from_u64(0x51C0_7ABE);

    // ITEM (global).
    {
        let mut txn = worker.begin();
        let mut in_txn = 0;
        for i in 1..=config.items {
            let item = ItemRow {
                name: format!("item-{i}"),
                price_cents: rng.gen_range(100..=10_000),
                data: if rng.gen_bool(0.1) {
                    format!(
                        "{}ORIGINAL{}",
                        random_string(&mut rng, 4, 10),
                        random_string(&mut rng, 4, 10)
                    )
                } else {
                    random_string(&mut rng, 26, 50)
                },
            };
            match config.split {
                TableSplit::Shared => {
                    txn.write(tables.item_table(1), &item_key(i), &item.encode())
                        .expect("load item");
                }
                TableSplit::PerWarehouse => {
                    for w in 1..=config.warehouses {
                        txn.write(tables.item_table(w), &item_key(i), &item.encode())
                            .expect("load item");
                    }
                }
            }
            in_txn += 1;
            if in_txn >= 512 {
                txn.commit().expect("load commit");
                txn = worker.begin();
                in_txn = 0;
            }
        }
        txn.commit().expect("load commit");
    }

    for w in 1..=config.warehouses {
        load_warehouse(&mut worker, &tables, config, w, &mut rng);
    }
    drop(worker);
    tables
}

fn load_warehouse(
    worker: &mut Worker,
    tables: &TpccTables,
    config: &TpccConfig,
    w: u32,
    rng: &mut SmallRng,
) {
    let mut txn = worker.begin();
    let mut in_txn = 0usize;
    macro_rules! put {
        ($table:expr, $key:expr, $value:expr) => {{
            txn.write($table, &$key, &$value).expect("load write");
            in_txn += 1;
            if in_txn >= 512 {
                txn.commit().expect("load commit");
                txn = worker.begin();
                in_txn = 0;
            }
        }};
    }

    let warehouse = WarehouseRow {
        name: format!("wh-{w}"),
        tax_bp: rng.gen_range(0..=2000),
        ytd_cents: 30_000_000,
    };
    put!(
        tables.id(TpccTable::Warehouse, w),
        warehouse_key(w),
        warehouse.encode()
    );

    // STOCK for every item.
    for i in 1..=config.items {
        let stock = StockRow {
            quantity: rng.gen_range(10..=100),
            ytd: 0,
            order_cnt: 0,
            remote_cnt: 0,
            dist_info: [b's'; 24],
            data: random_string(rng, 26, 50),
        };
        put!(
            tables.id(TpccTable::Stock, w),
            stock_key(w, i),
            stock.encode()
        );
    }

    for d in 1..=config.districts_per_warehouse {
        let district = DistrictRow {
            name: format!("dist-{w}-{d}"),
            tax_bp: rng.gen_range(0..=2000),
            ytd_cents: 3_000_000,
            next_o_id: config.initial_orders_per_district + 1,
        };
        put!(
            tables.id(TpccTable::District, w),
            district_key(w, d),
            district.encode()
        );

        // Customers and the last-name index.
        for c in 1..=config.customers_per_district {
            let last = if c <= config.customers_per_district.min(1000) {
                last_name(c - 1)
            } else {
                random_last_name(rng)
            };
            let customer = CustomerRow {
                first: random_string(rng, 8, 16),
                last: last.clone(),
                balance_cents: -10_00,
                ytd_payment_cents: 10_00,
                payment_cnt: 1,
                delivery_cnt: 0,
                discount_bp: rng.gen_range(0..=5000),
                credit: if rng.gen_bool(0.10) { *b"BC" } else { *b"GC" },
                data: random_string(rng, 50, 100),
            };
            put!(
                tables.id(TpccTable::Customer, w),
                customer_key(w, d, c),
                customer.encode()
            );
            put!(
                tables.id(TpccTable::CustomerNameIndex, w),
                customer_name_key(w, d, last.as_bytes(), c),
                c.to_le_bytes()
            );
            let history = HistoryRow {
                amount_cents: 10_00,
                date: 0,
                data: random_string(rng, 12, 24),
            };
            put!(
                tables.id(TpccTable::History, w),
                history_key(w, d, c, c as u64),
                history.encode()
            );
        }

        // Initial orders: customers in a random permutation; the last third
        // are undelivered and have NEW-ORDER rows.
        let n_orders = config.initial_orders_per_district;
        let mut customer_perm: Vec<u32> = (1..=config.customers_per_district).collect();
        for i in (1..customer_perm.len()).rev() {
            let j = rng.gen_range(0..=i);
            customer_perm.swap(i, j);
        }
        for o in 1..=n_orders {
            let c_id = customer_perm[(o as usize - 1) % customer_perm.len()];
            let ol_cnt = rng.gen_range(5..=15u32);
            let delivered = o <= n_orders - n_orders / 3;
            let order = OrderRow {
                c_id,
                entry_d: o as u64,
                carrier_id: if delivered { rng.gen_range(1..=10) } else { 0 },
                ol_cnt,
                all_local: true,
            };
            put!(
                tables.id(TpccTable::Order, w),
                order_key(w, d, o),
                order.encode()
            );
            put!(
                tables.id(TpccTable::OrderCustomerIndex, w),
                order_customer_key(w, d, c_id, o),
                o.to_le_bytes()
            );
            if !delivered {
                put!(
                    tables.id(TpccTable::NewOrder, w),
                    new_order_key(w, d, o),
                    Vec::new()
                );
            }
            for ol in 1..=ol_cnt {
                let line = OrderLineRow {
                    i_id: rng.gen_range(1..=config.items),
                    supply_w_id: w,
                    delivery_d: if delivered { o as u64 } else { 0 },
                    quantity: 5,
                    amount_cents: if delivered {
                        0
                    } else {
                        rng.gen_range(1..=999_999)
                    },
                    dist_info: [b'd'; 24],
                };
                put!(
                    tables.id(TpccTable::OrderLine, w),
                    order_line_key(w, d, o, ol),
                    line.encode()
                );
            }
        }
    }
    txn.commit().expect("load commit");
}

// ---------------------------------------------------------------------------
// Workload
// ---------------------------------------------------------------------------

/// Per-run outcome counters for each transaction type.
#[derive(Debug, Default, Clone)]
pub struct TpccCounters {
    /// Committed transactions per kind.
    pub committed: [u64; 5],
    /// Aborted transactions per kind (includes the 1% intentional new-order
    /// rollbacks).
    pub aborted: [u64; 5],
}

/// The TPC-C workload: picks a transaction from the mix and runs it against
/// the thread's home warehouse.
pub struct TpccWorkload {
    config: TpccConfig,
    tables: TpccTables,
}

impl TpccWorkload {
    /// Creates the workload over loaded tables.
    pub fn new(config: TpccConfig, tables: TpccTables) -> Self {
        TpccWorkload { config, tables }
    }

    /// The configuration this workload runs with.
    pub fn config(&self) -> &TpccConfig {
        &self.config
    }

    /// The catalog handles.
    pub fn tables(&self) -> &TpccTables {
        &self.tables
    }

    /// The home warehouse for a driver thread (clients of a warehouse are
    /// assigned to the same thread, §5.3).
    pub fn home_warehouse(&self, thread_index: usize) -> u32 {
        (thread_index as u32 % self.config.warehouses) + 1
    }
}

impl Workload for TpccWorkload {
    fn run_one(&self, worker: &mut Worker, rng: &mut SmallRng, thread_index: usize) -> bool {
        let w_id = self.home_warehouse(thread_index);
        let kind = self.config.mix.pick(rng);
        let result = match kind {
            TxnKind::NewOrder => {
                txns::new_order(worker, &self.tables, &self.config, rng, w_id).map(|_| ())
            }
            TxnKind::Payment => txns::payment(worker, &self.tables, &self.config, rng, w_id),
            TxnKind::OrderStatus => {
                txns::order_status(worker, &self.tables, &self.config, rng, w_id)
            }
            TxnKind::Delivery => txns::delivery(worker, &self.tables, &self.config, rng, w_id),
            TxnKind::StockLevel => {
                txns::stock_level(worker, &self.tables, &self.config, rng, w_id).map(|_| ())
            }
        };
        result.is_ok()
    }
}

#[cfg(test)]
mod tests;
