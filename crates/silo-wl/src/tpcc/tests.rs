//! TPC-C tests: loading, individual transactions, consistency invariants and
//! the full mix under the driver.

use super::*;
use crate::driver::RunOptions;
use rand::SeedableRng;
use silo_core::{Database, SiloConfig};
use std::time::Duration;

fn tpcc_db() -> Arc<Database> {
    Database::open(SiloConfig::for_testing().with_spawn_epoch_advancer(true))
}

fn rng() -> SmallRng {
    SmallRng::seed_from_u64(42)
}

#[test]
fn loader_populates_all_tables() {
    let db = tpcc_db();
    let cfg = TpccConfig::tiny();
    let tables = load(&db, &cfg);

    assert_eq!(
        db.table(tables.id(TpccTable::Warehouse, 1))
            .approximate_len() as u32,
        cfg.warehouses
    );
    assert_eq!(
        db.table(tables.id(TpccTable::District, 1))
            .approximate_len() as u32,
        cfg.warehouses * cfg.districts_per_warehouse
    );
    assert_eq!(
        db.table(tables.id(TpccTable::Customer, 1))
            .approximate_len() as u32,
        cfg.warehouses * cfg.districts_per_warehouse * cfg.customers_per_district
    );
    assert_eq!(
        db.table(tables.item_table(1)).approximate_len() as u32,
        cfg.items
    );
    assert_eq!(
        db.table(tables.id(TpccTable::Stock, 1)).approximate_len() as u32,
        cfg.warehouses * cfg.items
    );
    assert_eq!(
        db.table(tables.id(TpccTable::Order, 1)).approximate_len() as u32,
        cfg.warehouses * cfg.districts_per_warehouse * cfg.initial_orders_per_district
    );
    // A third of the initial orders are undelivered.
    let new_orders = db
        .table(tables.id(TpccTable::NewOrder, 1))
        .approximate_len() as u32;
    assert_eq!(
        new_orders,
        cfg.warehouses * cfg.districts_per_warehouse * (cfg.initial_orders_per_district / 3)
    );
    db.stop_epoch_advancer();
}

#[test]
fn per_warehouse_split_separates_tables() {
    let db = tpcc_db();
    let cfg = TpccConfig {
        split: TableSplit::PerWarehouse,
        ..TpccConfig::tiny()
    };
    let tables = load(&db, &cfg);
    assert_ne!(
        tables.id(TpccTable::Stock, 1),
        tables.id(TpccTable::Stock, 2),
        "split mode must give each warehouse its own tree"
    );
    assert_eq!(
        db.table(tables.id(TpccTable::Stock, 1)).approximate_len() as u32,
        cfg.items
    );
    assert_eq!(
        db.table(tables.id(TpccTable::Warehouse, 2))
            .approximate_len(),
        1
    );
    db.stop_epoch_advancer();
}

#[test]
fn new_order_creates_order_rows_and_bumps_district_counter() {
    let db = tpcc_db();
    let cfg = TpccConfig::tiny();
    let tables = load(&db, &cfg);
    let mut worker = db.register_worker();
    let mut r = rng();

    let orders_before = db.table(tables.id(TpccTable::Order, 1)).approximate_len();
    let mut committed = 0;
    for _ in 0..20 {
        if txns::new_order(&mut worker, &tables, &cfg, &mut r, 1).is_ok() {
            committed += 1;
        }
    }
    assert!(committed > 0, "most new-order transactions should commit");
    let orders_after = db.table(tables.id(TpccTable::Order, 1)).approximate_len();
    assert_eq!(orders_after - orders_before, committed);

    // The district counter advanced by exactly the number of commits (no
    // FastIds, so ids are contiguous).
    let mut txn = worker.begin();
    let mut next_ids = 0u32;
    for d in 1..=cfg.districts_per_warehouse {
        let raw = txn
            .read(
                tables.id(TpccTable::District, 1),
                &schema::district_key(1, d),
            )
            .unwrap()
            .unwrap();
        next_ids += DistrictRow::decode(&raw).next_o_id - (cfg.initial_orders_per_district + 1);
    }
    txn.commit().unwrap();
    assert_eq!(next_ids as usize, committed);
    db.stop_epoch_advancer();
}

#[test]
fn payment_updates_balances_and_ytd() {
    let db = tpcc_db();
    let cfg = TpccConfig::tiny();
    let tables = load(&db, &cfg);
    let mut worker = db.register_worker();
    let mut r = rng();

    let read_w_ytd = |worker: &mut silo_core::Worker| {
        let mut txn = worker.begin();
        let raw = txn
            .read(
                tables.id(TpccTable::Warehouse, 1),
                &schema::warehouse_key(1),
            )
            .unwrap()
            .unwrap();
        let ytd = WarehouseRow::decode(&raw).ytd_cents;
        txn.commit().unwrap();
        ytd
    };
    let before = read_w_ytd(&mut worker);
    let mut committed = 0;
    for _ in 0..10 {
        if txns::payment(&mut worker, &tables, &cfg, &mut r, 1).is_ok() {
            committed += 1;
        }
    }
    assert!(committed > 0);
    // Some payments may have gone to warehouse 2's customers, but W_YTD of the
    // home warehouse grows with every committed payment issued at warehouse 1.
    assert!(read_w_ytd(&mut worker) > before);
    db.stop_epoch_advancer();
}

#[test]
fn order_status_and_stock_level_are_read_only() {
    let db = tpcc_db();
    let cfg = TpccConfig::tiny();
    let tables = load(&db, &cfg);
    let mut worker = db.register_worker();
    let mut r = rng();

    let commits_before = worker.stats().commits;
    for _ in 0..10 {
        txns::order_status(&mut worker, &tables, &cfg, &mut r, 1).unwrap();
    }
    // Regular-transaction stock level (NoSS variant).
    let cfg_noss = TpccConfig {
        stock_level_on_snapshot: false,
        ..cfg.clone()
    };
    for _ in 0..10 {
        let count = txns::stock_level(&mut worker, &tables, &cfg_noss, &mut r, 1).unwrap();
        let _ = count;
    }
    assert!(worker.stats().commits >= commits_before + 20);
    db.stop_epoch_advancer();
}

#[test]
fn stock_level_on_snapshot_never_aborts() {
    let db = tpcc_db();
    let cfg = TpccConfig::tiny();
    let tables = load(&db, &cfg);
    let mut worker = db.register_worker();
    let mut r = rng();
    let aborts_before = worker.stats().aborts;
    for _ in 0..20 {
        txns::stock_level(&mut worker, &tables, &cfg, &mut r, 1).unwrap();
    }
    assert_eq!(worker.stats().aborts, aborts_before);
    assert!(worker.stats().snapshot_commits >= 20);
    db.stop_epoch_advancer();
}

#[test]
fn delivery_consumes_new_orders() {
    let db = tpcc_db();
    let cfg = TpccConfig::tiny();
    let tables = load(&db, &cfg);
    let mut worker = db.register_worker();
    let mut r = rng();

    let pending_before = db
        .table(tables.id(TpccTable::NewOrder, 1))
        .approximate_len();
    assert!(pending_before > 0);
    txns::delivery(&mut worker, &tables, &cfg, &mut r, 1).unwrap();
    // Deleted NEW-ORDER rows stay as absent records until GC, so count via a
    // transactionally consistent scan instead of the raw tree size.
    let mut txn = worker.begin();
    let remaining = txn
        .scan(tables.id(TpccTable::NewOrder, 1), b"", None, None)
        .unwrap()
        .len();
    txn.commit().unwrap();
    assert_eq!(
        remaining,
        pending_before - cfg.districts_per_warehouse as usize,
        "one new-order per district must be delivered"
    );
    db.stop_epoch_advancer();
}

#[test]
fn fast_ids_variant_still_creates_orders() {
    let db = tpcc_db();
    let cfg = TpccConfig {
        fast_ids: true,
        ..TpccConfig::tiny()
    };
    let tables = load(&db, &cfg);
    let mut worker = db.register_worker();
    let mut r = rng();
    let before = db.table(tables.id(TpccTable::Order, 1)).approximate_len();
    let mut committed = 0;
    for _ in 0..10 {
        if txns::new_order(&mut worker, &tables, &cfg, &mut r, 1).is_ok() {
            committed += 1;
        }
    }
    assert!(committed > 0);
    assert_eq!(
        db.table(tables.id(TpccTable::Order, 1)).approximate_len() - before,
        committed
    );
    db.stop_epoch_advancer();
}

#[test]
fn standard_mix_runs_under_the_driver() {
    let db = tpcc_db();
    let cfg = TpccConfig::tiny();
    let tables = load(&db, &cfg);
    let workload = Arc::new(TpccWorkload::new(cfg, tables));
    let result = RunOptions::default()
        .with_threads(2)
        .with_duration(Duration::from_millis(200))
        .run(&db, workload);
    assert!(result.committed > 0, "the mix should commit transactions");
    db.stop_epoch_advancer();
}

#[test]
fn consistency_invariants_hold_after_concurrent_mix() {
    // TPC-C consistency condition 1 (adapted): for every district,
    // D_NEXT_O_ID - 1 equals the maximum O_ID in the ORDER table, and every
    // order has between 5 and 15 order lines matching its O_OL_CNT.
    let db = tpcc_db();
    let cfg = TpccConfig::tiny();
    let tables = load(&db, &cfg);
    let workload = Arc::new(TpccWorkload::new(cfg.clone(), tables.clone()));
    let _ = RunOptions::default()
        .with_threads(2)
        .with_duration(Duration::from_millis(300))
        .run(&db, workload);

    let mut worker = db.register_worker();
    let mut txn = worker.begin();
    for w in 1..=cfg.warehouses {
        for d in 1..=cfg.districts_per_warehouse {
            let raw = txn
                .read(
                    tables.id(TpccTable::District, w),
                    &schema::district_key(w, d),
                )
                .unwrap()
                .unwrap();
            let district = DistrictRow::decode(&raw);
            // Largest order id in the ORDER table for this district.
            let orders = txn
                .scan(
                    tables.id(TpccTable::Order, w),
                    &schema::order_key(w, d, 0),
                    Some(&schema::order_key(w, d, u32::MAX)),
                    None,
                )
                .unwrap();
            let max_o_id = orders
                .iter()
                .map(|(k, _)| u32::from_be_bytes(k[k.len() - 4..].try_into().unwrap()))
                .max()
                .unwrap_or(0);
            assert_eq!(
                district.next_o_id - 1,
                max_o_id,
                "D_NEXT_O_ID must track the largest order id (w={w}, d={d})"
            );
            // Order-line counts match O_OL_CNT.
            for (k, raw) in orders.iter().rev().take(5) {
                let o_id = u32::from_be_bytes(k[k.len() - 4..].try_into().unwrap());
                let order = OrderRow::decode(raw);
                let lines = txn
                    .scan(
                        tables.id(TpccTable::OrderLine, w),
                        &schema::order_line_prefix(w, d, o_id),
                        txns::prefix_end(&schema::order_line_prefix(w, d, o_id)).as_deref(),
                        None,
                    )
                    .unwrap();
                assert_eq!(lines.len() as u32, order.ol_cnt, "order lines match ol_cnt");
            }
        }
    }
    txn.commit().unwrap();
    db.stop_epoch_advancer();
}

#[test]
fn nurand_and_last_name_follow_spec_shapes() {
    let mut r = rng();
    for _ in 0..1000 {
        let v = nurand(&mut r, 1023, NURAND_C_C_ID, 1, 3000);
        assert!((1..=3000).contains(&v));
        let i = nurand(&mut r, 8191, NURAND_C_OL_I_ID, 1, 100_000);
        assert!((1..=100_000).contains(&i));
    }
    assert_eq!(last_name(0), "BARBARBAR");
    assert_eq!(last_name(371), "PRICALLYOUGHT");
    assert_eq!(last_name(999), "EINGEINGEING");
    assert_eq!(last_name(1371), last_name(371));
}

#[test]
fn mix_percentages_select_all_kinds() {
    let mix = TpccMix::standard();
    let mut r = rng();
    let mut seen = std::collections::HashSet::new();
    for _ in 0..2000 {
        seen.insert(mix.pick(&mut r));
    }
    assert_eq!(
        seen.len(),
        5,
        "standard mix must exercise all five transactions"
    );
    let no_only = TpccMix::new_order_only();
    for _ in 0..100 {
        assert_eq!(no_only.pick(&mut r), TxnKind::NewOrder);
    }
}
