//! TPC-C consistency conditions (clause 3.3.2), checked against a live
//! database.
//!
//! The checks mirror the ones the `tpcc_consistency` integration test always
//! ran after a concurrent mix, packaged as a library function so the
//! crash-recovery gate can run the *same* invariants against a database
//! rebuilt from a checkpoint + log tail: a recovered state that passes them
//! is transaction-consistent, which is exactly what epoch-based recovery
//! (paper §4.10) promises — the durable prefix of the run, never a torn one.

use std::sync::Arc;

use silo_core::Database;

use super::schema::{self, DistrictRow, OrderRow, TpccTable};
use super::{txns, TpccConfig, TpccTables};

/// What [`check_consistency`] verified, for reporting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConsistencySummary {
    /// Districts checked (C1 holds in each).
    pub districts: u64,
    /// ORDER rows scanned across all districts.
    pub orders: u64,
    /// Pending NEW-ORDER rows cross-checked against ORDER rows (C3).
    pub pending_new_orders: u64,
    /// Recent orders whose ORDER-LINE counts were verified (C4).
    pub order_line_checks: u64,
}

/// Verifies the adapted TPC-C consistency conditions 1, 3 and 4 on every
/// district:
///
/// * **C1**: `D_NEXT_O_ID − 1 == max(O_ID)` over the district's ORDER rows;
/// * **C3**: every NEW-ORDER row has a matching, undelivered ORDER row;
/// * **C4**: for the most recent orders, the number of ORDER-LINE rows equals
///   `O_OL_CNT`.
///
/// Runs in a single read-only transaction, so it must be called while no
/// writers are active (after a driver run, or after recovery). Returns what
/// was checked, or a description of the first violated invariant.
pub fn check_consistency(
    db: &Arc<Database>,
    cfg: &TpccConfig,
    tables: &TpccTables,
) -> Result<ConsistencySummary, String> {
    let mut summary = ConsistencySummary::default();
    let mut worker = db.register_worker();
    let mut txn = worker.begin();
    let fail = |msg: String| -> Result<ConsistencySummary, String> { Err(msg) };
    for w in 1..=cfg.warehouses {
        for d in 1..=cfg.districts_per_warehouse {
            let district_raw = txn
                .read(
                    tables.id(TpccTable::District, w),
                    &schema::district_key(w, d),
                )
                .map_err(|e| format!("district read aborted at w={w} d={d}: {e}"))?
                .ok_or_else(|| format!("district row missing at w={w} d={d}"))?;
            let district = DistrictRow::decode(&district_raw);

            // C1: D_NEXT_O_ID - 1 = max(O_ID).
            let orders = txn
                .scan(
                    tables.id(TpccTable::Order, w),
                    &schema::order_key(w, d, 0),
                    Some(&schema::order_key(w, d, u32::MAX)),
                    None,
                )
                .map_err(|e| format!("order scan aborted at w={w} d={d}: {e}"))?;
            summary.orders += orders.len() as u64;
            let max_o_id = orders
                .iter()
                .map(|(k, _)| u32::from_be_bytes(k[k.len() - 4..].try_into().unwrap()))
                .max()
                .unwrap_or(0);
            if district.next_o_id - 1 != max_o_id {
                return fail(format!(
                    "C1 violated at w={w} d={d}: D_NEXT_O_ID-1={} but max(O_ID)={max_o_id}",
                    district.next_o_id - 1
                ));
            }

            // C3 (adapted): every NEW-ORDER row has a matching undelivered
            // ORDER row.
            let pending = txn
                .scan(
                    tables.id(TpccTable::NewOrder, w),
                    &schema::new_order_district_prefix(w, d),
                    txns::prefix_end(&schema::new_order_district_prefix(w, d)).as_deref(),
                    None,
                )
                .map_err(|e| format!("new-order scan aborted at w={w} d={d}: {e}"))?;
            for (no_key, _) in &pending {
                let o_id = u32::from_be_bytes(no_key[no_key.len() - 4..].try_into().unwrap());
                let order_raw = txn
                    .read(
                        tables.id(TpccTable::Order, w),
                        &schema::order_key(w, d, o_id),
                    )
                    .map_err(|e| format!("order read aborted at w={w} d={d} o={o_id}: {e}"))?;
                let Some(order_raw) = order_raw else {
                    return fail(format!(
                        "C3 violated at w={w} d={d}: NEW-ORDER {o_id} has no ORDER row"
                    ));
                };
                if OrderRow::decode(&order_raw).carrier_id != 0 {
                    return fail(format!(
                        "C3 violated at w={w} d={d}: pending order {o_id} already delivered"
                    ));
                }
                summary.pending_new_orders += 1;
            }

            // C4 (adapted): for recent orders, ORDER-LINE count = O_OL_CNT.
            for (k, raw) in orders.iter().rev().take(3) {
                let o_id = u32::from_be_bytes(k[k.len() - 4..].try_into().unwrap());
                let order = OrderRow::decode(raw);
                let prefix = schema::order_line_prefix(w, d, o_id);
                let lines = txn
                    .scan(
                        tables.id(TpccTable::OrderLine, w),
                        &prefix,
                        txns::prefix_end(&prefix).as_deref(),
                        None,
                    )
                    .map_err(|e| format!("order-line scan aborted at w={w} d={d} o={o_id}: {e}"))?;
                if lines.len() as u32 != order.ol_cnt {
                    return fail(format!(
                        "C4 violated at w={w} d={d} o={o_id}: {} order-lines but O_OL_CNT={}",
                        lines.len(),
                        order.ol_cnt
                    ));
                }
                summary.order_line_checks += 1;
            }
            summary.districts += 1;
        }
    }
    txn.commit()
        .map_err(|e| format!("consistency check transaction failed to commit: {e}"))?;
    Ok(summary)
}
